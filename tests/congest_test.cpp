// CONGEST simulator and protocols: semantics against centralized BFS, model
// enforcement (message budget, one message per edge per direction), and
// round-complexity bounds.
#include <gtest/gtest.h>

#include "congest/bfs.hpp"
#include "congest/landmark_sketch.hpp"
#include "congest/replacement.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "rp/oracle.hpp"

namespace msrp::congest {
namespace {

// --------------------------------------------------------------- simulator

TEST(Simulator, MessageBudgetEnforced) {
  const Graph g = gen::path(4);
  CongestSimulator sim(g, 4);  // 4-bit payloads
  EXPECT_EQ(sim.message_bits(), 4u);
  sim.run(
      [&](Vertex v, std::span<const Inbound>, CongestSimulator::Outbox& ob) {
        if (v == 0 && sim.total_rounds() == 0) {
          EXPECT_THROW(ob.send(g.neighbors(0)[0], 16), std::invalid_argument);
          ob.send(g.neighbors(0)[0], 15);  // fits
        }
      },
      3);
  EXPECT_EQ(sim.total_messages(), 1u);
}

TEST(Simulator, OneMessagePerEdgePerDirection) {
  const Graph g = gen::path(3);
  CongestSimulator sim(g);
  sim.run(
      [&](Vertex v, std::span<const Inbound>, CongestSimulator::Outbox& ob) {
        if (v == 1 && sim.total_rounds() == 0) {
          const Arc left = g.neighbors(1)[0];
          ob.send(left, 1);
          EXPECT_THROW(ob.send(left, 2), std::invalid_argument);  // same arc
          ob.send(g.neighbors(1)[1], 3);                          // other arc ok
        }
      },
      3);
}

TEST(Simulator, DeliveryIsNextRound) {
  const Graph g = gen::path(2);
  CongestSimulator sim(g);
  std::vector<std::uint32_t> heard_at(2, 0);
  std::uint32_t round = 0;
  sim.run(
      [&](Vertex v, std::span<const Inbound> inbox, CongestSimulator::Outbox& ob) {
        if (v == 0 && round == 0) ob.send(g.neighbors(0)[0], 7);
        if (v == 1 && !inbox.empty()) {
          EXPECT_EQ(inbox[0].payload, 7u);
          EXPECT_EQ(inbox[0].from, 0u);
          heard_at[1] = round;
        }
        if (v == 1) round += (v == 1);  // count rounds once per round
      },
      5);
  EXPECT_EQ(heard_at[1], 1u);
}

TEST(Simulator, FailedEdgeDropsMessages) {
  const Graph g = gen::path(2);
  CongestSimulator sim(g);
  sim.fail_edge(0);
  bool heard = false;
  sim.run(
      [&](Vertex v, std::span<const Inbound> inbox, CongestSimulator::Outbox& ob) {
        if (v == 0 && sim.total_rounds() == 0) ob.send(g.neighbors(0)[0], 1);
        if (v == 1 && !inbox.empty()) heard = true;
      },
      4);
  EXPECT_FALSE(heard);
  sim.restore_edges();
}

TEST(Simulator, TerminatesOnSilence) {
  const Graph g = gen::path(3);
  CongestSimulator sim(g);
  const std::uint32_t rounds = sim.run(
      [](Vertex, std::span<const Inbound>, CongestSimulator::Outbox&) {}, 100);
  EXPECT_EQ(rounds, 0u);
}

// --------------------------------------------------------------- bfs

class CongestBfsTest : public testing::TestWithParam<int> {};

TEST_P(CongestBfsTest, MatchesCentralizedBfs) {
  Rng rng(40 + GetParam());
  std::vector<Graph> graphs;
  graphs.push_back(gen::connected_gnp(60, 0.08, rng));
  graphs.push_back(gen::grid(6, 8));
  graphs.push_back(gen::path(40));
  graphs.push_back(gen::star_of_paths(3, 7));
  for (const Graph& g : graphs) {
    const auto root = static_cast<Vertex>(rng.next_below(g.num_vertices()));
    const BfsOutcome out = distributed_bfs(g, root);
    const BfsTree want(g, root);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(out.dist[v], want.dist(v)) << "root=" << root << " v=" << v;
    }
    // Flooding completes in eccentricity + 1 rounds, <= 2 messages/edge.
    EXPECT_LE(out.rounds, eccentricity(g, root) + 1);
    EXPECT_LE(out.messages, 2ull * g.num_edges());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CongestBfsTest, testing::Range(0, 3));

TEST(CongestBfs, DisconnectedStaysInfinite) {
  Graph g(5, {{0, 1}, {2, 3}});
  const BfsOutcome out = distributed_bfs(g, 0);
  EXPECT_EQ(out.dist[1], 1u);
  EXPECT_EQ(out.dist[2], kInfDist);
  EXPECT_EQ(out.dist[4], kInfDist);
}

TEST(CongestBfs, FailedEdgeMatchesDeletion) {
  const Graph g = gen::cycle(8);
  const EdgeId e = g.find_edge(0, 1);
  const BfsOutcome out = distributed_bfs(g, 0, e);
  const BfsTree want(g, 0, e);
  for (Vertex v = 0; v < 8; ++v) EXPECT_EQ(out.dist[v], want.dist(v));
}

// ------------------------------------------------------- multi-source bfs

TEST(CongestMultiSource, NearestSourceSemantics) {
  Rng rng(55);
  const Graph g = gen::connected_gnp(70, 0.07, rng);
  const std::vector<Vertex> sources{3, 31, 55};
  const MultiSourceBfsOutcome out = distributed_multi_source_bfs(g, sources);
  std::vector<BfsTree> trees;
  for (const Vertex s : sources) trees.emplace_back(g, s);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    Dist best = kInfDist;
    for (const auto& t : trees) best = std::min(best, t.dist(v));
    EXPECT_EQ(out.dist[v], best);
    if (best != kInfDist) {
      ASSERT_LT(out.nearest[v], sources.size());
      EXPECT_EQ(trees[out.nearest[v]].dist(v), best);
      // Tie-break: the smallest source index among minimizers.
      for (std::uint32_t i = 0; i < out.nearest[v]; ++i) {
        EXPECT_GT(trees[i].dist(v), best);
      }
    }
  }
}

TEST(CongestMultiSource, AllSourcesZero) {
  const Graph g = gen::grid(4, 4);
  std::vector<Vertex> all;
  for (Vertex v = 0; v < 16; ++v) all.push_back(v);
  const MultiSourceBfsOutcome out = distributed_multi_source_bfs(g, all);
  for (Vertex v = 0; v < 16; ++v) {
    EXPECT_EQ(out.dist[v], 0u);
    EXPECT_EQ(out.nearest[v], v);
  }
  EXPECT_LE(out.rounds, 2u);
}

// ------------------------------------------------------- replacement paths

TEST(CongestReplacement, MatchesOracle) {
  Rng rng(66);
  const Graph g = gen::path_with_chords(40, 10, rng);
  const Vertex s = 0;
  const RpOracle oracle(g, s);
  for (const Vertex t : {static_cast<Vertex>(20), static_cast<Vertex>(39)}) {
    const ReplacementOutcome out = distributed_replacement_paths(g, s, t);
    const auto want = oracle.replacement_row(t);
    ASSERT_EQ(out.avoiding.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(out.avoiding[i], want[i]);
    EXPECT_GT(out.total_rounds, 0u);
  }
}

TEST(CongestReplacement, RoundsScaleWithPathLength) {
  const Graph g = gen::cycle(24);
  const ReplacementOutcome out = distributed_replacement_paths(g, 0, 12);
  ASSERT_EQ(out.path_edges.size(), 12u);
  // One base BFS + 12 avoidance BFS runs, each <= n rounds.
  EXPECT_LE(out.total_rounds, 13u * 24u);
  EXPECT_GE(out.total_rounds, 12u);
  for (const Dist d : out.avoiding) EXPECT_EQ(d, 12u);  // the other arc
}

TEST(CongestReplacement, UnreachableTarget) {
  Graph g(4, {{0, 1}, {2, 3}});
  const ReplacementOutcome out = distributed_replacement_paths(g, 0, 3);
  EXPECT_TRUE(out.path_edges.empty());
  EXPECT_TRUE(out.avoiding.empty());
}

// ------------------------------------------------------ landmark sketch

class LandmarkSketchTest : public testing::TestWithParam<int> {};

TEST_P(LandmarkSketchTest, ExactDistancesToEveryLandmark) {
  Rng rng(70 + GetParam());
  std::vector<Graph> graphs;
  graphs.push_back(gen::connected_gnp(80, 0.06, rng));
  graphs.push_back(gen::grid(7, 9));
  graphs.push_back(gen::path_with_chords(64, 12, rng));
  for (const Graph& g : graphs) {
    const auto picks = rng.sample_without_replacement(g.num_vertices(), 6);
    const std::vector<Vertex> landmarks(picks.begin(), picks.end());
    const LandmarkSketchOutcome out = distributed_landmark_sketch(g, landmarks);
    for (std::uint32_t li = 0; li < landmarks.size(); ++li) {
      const BfsTree want(g, landmarks[li]);
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        ASSERT_EQ(out.at(li, v, g.num_vertices()), want.dist(v))
            << "li=" << li << " v=" << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LandmarkSketchTest, testing::Range(0, 3));

TEST(LandmarkSketch, PipeliningBeatsSequentialFloods) {
  // Concurrent floods must finish well under |L| separate BFS runs:
  // rounds = O(|L| + D), not O(|L| * D).
  const Graph g = gen::grid(16, 16);  // D = 30
  std::vector<Vertex> landmarks;
  for (Vertex i = 0; i < 16; ++i) landmarks.push_back(i * 17);  // diagonal
  const LandmarkSketchOutcome out = distributed_landmark_sketch(g, landmarks);
  const std::uint32_t sequential = 16 * (30 + 1);
  EXPECT_LT(out.rounds, sequential / 2);
  EXPECT_GE(out.rounds, 30u);  // can't beat the diameter
}

TEST(LandmarkSketch, SingleLandmarkEqualsBfs) {
  const Graph g = gen::cycle(20);
  const LandmarkSketchOutcome out = distributed_landmark_sketch(g, {5});
  const BfsOutcome bfs = distributed_bfs(g, 5);
  for (Vertex v = 0; v < 20; ++v) EXPECT_EQ(out.at(0, v, 20), bfs.dist[v]);
}

TEST(LandmarkSketch, DisconnectedStaysInfinite) {
  Graph g(6, {{0, 1}, {1, 2}, {3, 4}});
  const LandmarkSketchOutcome out = distributed_landmark_sketch(g, {0, 3});
  EXPECT_EQ(out.at(0, 4, 6), kInfDist);
  EXPECT_EQ(out.at(1, 4, 6), 1u);
  EXPECT_EQ(out.at(0, 5, 6), kInfDist);
  EXPECT_EQ(out.at(1, 5, 6), kInfDist);
}

}  // namespace
}  // namespace msrp::congest
