// Chaos and reliability tests: the failpoint framework itself (spec
// grammar, one-shot and every-Kth arming, delay, env loading), end-to-end
// deadlines at every layer (service, dispatcher queue, TCP wire), the
// client retry policy (deterministic backoff schedule, reconnect-and-
// resend under injected receive truncation), crash-safe snapshot saves,
// registry build timeouts and failed-tenant retention, server idle /
// write-stall eviction, and shard-worker recovery (kill while futex-
// parked, corrupted attach detected and healed by respawn).
//
// The protocol-v3 workload opcodes get the same treatment: every typed
// entry point (vitality, Vickrey, k-fail) honors expired deadlines on both
// the sync and callback paths, a parked KFAIL_BATCH surfaces DEADLINE on
// the wire, admission control answers BUSY to a VITALITY_BATCH and the
// typed retry wrapper replays it byte-identically, and a service.answer
// stall turns each workload batch into an ERROR frame without hurting the
// connection.
//
// Failpoint *sites* are compiled in only under -DMSRP_FAILPOINTS=ON; the
// fail:: control functions are always linked, so the framework tests run
// in every build and the injection tests GTEST_SKIP when the sites are
// compiled out. Fork-based legs skip under TSan like shard_test does.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/msrp.hpp"
#include "graph/generators.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "registry/dispatch.hpp"
#include "registry/oracle_registry.hpp"
#include "service/query_gen.hpp"
#include "service/query_service.hpp"
#include "service/shard_router.hpp"
#include "service/workloads.hpp"
#include "util/deadline.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace msrp {
namespace {

using service::Query;
using service::Snapshot;

#if defined(__SANITIZE_THREAD__)
constexpr bool kTsanBuild = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsanBuild = true;
#else
constexpr bool kTsanBuild = false;
#endif
#else
constexpr bool kTsanBuild = false;
#endif

#define SKIP_WITHOUT_FAILPOINTS()                                            \
  do {                                                                       \
    if (!fail::kCompiledIn) GTEST_SKIP() << "-DMSRP_FAILPOINTS=ON required"; \
  } while (false)

#define SKIP_WITHOUT_EPOLL()                                         \
  do {                                                               \
    if (!net::Server::supported()) GTEST_SKIP() << "epoll required"; \
  } while (false)

/// No-hang watchdog: chaos tests inject stalls and crashes on purpose, so
/// a wedged test must die loudly instead of eating the CI job. SIGALRM's
/// default action terminates the process with a distinctive status.
class WatchdogEnvironment : public ::testing::Environment {
 public:
  void SetUp() override {
#if defined(__unix__) || defined(__APPLE__)
    ::alarm(480);
#endif
  }
  void TearDown() override {
#if defined(__unix__) || defined(__APPLE__)
    ::alarm(0);
#endif
  }
};
const auto* const kWatchdog =
    ::testing::AddGlobalTestEnvironment(new WatchdogEnvironment);

// ------------------------------------------------------ failpoint framework

// The fail:: functions are compiled unconditionally (only the site macro is
// gated), so this section runs in every build. Sites are named test.* to
// stay clear of the real sites armed by the injection tests below.

TEST(Failpoint, UnarmedSiteIsFreeAndFalse) {
  fail::clear("test.unarmed");
  EXPECT_FALSE(fail::hit("test.unarmed"));
  EXPECT_EQ(fail::fire_count("test.unarmed"), 0u);
}

TEST(Failpoint, ErrorActionFiresEveryHitUntilCleared) {
  ASSERT_TRUE(fail::set("test.err", "error"));
  EXPECT_TRUE(fail::hit("test.err"));
  EXPECT_TRUE(fail::hit("test.err"));
  EXPECT_EQ(fail::fire_count("test.err"), 2u);
  fail::clear("test.err");
  EXPECT_FALSE(fail::hit("test.err"));
  EXPECT_EQ(fail::fire_count("test.err"), 2u);  // counters survive clear
}

TEST(Failpoint, OneShotFiresExactlyOnce) {
  ASSERT_TRUE(fail::set("test.oneshot", "error*1"));
  EXPECT_TRUE(fail::hit("test.oneshot"));
  EXPECT_FALSE(fail::hit("test.oneshot"));
  EXPECT_FALSE(fail::hit("test.oneshot"));
  EXPECT_EQ(fail::fire_count("test.oneshot"), 1u);
  fail::clear("test.oneshot");
}

TEST(Failpoint, EveryKthFiresOnTheKthHitOnly) {
  ASSERT_TRUE(fail::set("test.kth", "error%3"));
  EXPECT_FALSE(fail::hit("test.kth"));
  EXPECT_FALSE(fail::hit("test.kth"));
  EXPECT_TRUE(fail::hit("test.kth"));  // 3rd
  EXPECT_FALSE(fail::hit("test.kth"));
  EXPECT_FALSE(fail::hit("test.kth"));
  EXPECT_TRUE(fail::hit("test.kth"));  // 6th
  EXPECT_EQ(fail::fire_count("test.kth"), 2u);
  fail::clear("test.kth");
}

TEST(Failpoint, DelayStallsButContinuesNormally) {
  ASSERT_TRUE(fail::set("test.delay", "delay:30000"));  // 30 ms
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(fail::hit("test.delay"));  // delay is not an error branch
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(20));
  EXPECT_EQ(fail::fire_count("test.delay"), 1u);
  fail::clear("test.delay");
}

TEST(Failpoint, MalformedSpecsAreRejectedWhole) {
  EXPECT_FALSE(fail::set("test.bad", ""));
  EXPECT_FALSE(fail::set("test.bad", "explode"));
  EXPECT_FALSE(fail::set("test.bad", "error*notanumber"));
  EXPECT_FALSE(fail::set("test.bad", "delay:xyz"));
  EXPECT_FALSE(fail::hit("test.bad"));  // never half-armed
}

TEST(Failpoint, OffSpecDisarms) {
  ASSERT_TRUE(fail::set("test.off", "error"));
  EXPECT_TRUE(fail::hit("test.off"));
  ASSERT_TRUE(fail::set("test.off", "off"));
  EXPECT_FALSE(fail::hit("test.off"));
}

#if defined(__unix__) || defined(__APPLE__)
TEST(Failpoint, EnvironmentArmsSites) {
  ::setenv("MSRP_FAILPOINTS", "test.env.a=error*1;test.env.b=error%2", 1);
  fail::load_env();
  ::unsetenv("MSRP_FAILPOINTS");
  EXPECT_TRUE(fail::hit("test.env.a"));
  EXPECT_FALSE(fail::hit("test.env.a"));  // one-shot spent
  EXPECT_FALSE(fail::hit("test.env.b"));
  EXPECT_TRUE(fail::hit("test.env.b"));  // every 2nd
  fail::clear_all();
}
#endif

// ------------------------------------------------------ deadline primitives

TEST(Deadline, AfterMsAndExpiry) {
  EXPECT_FALSE(deadline_expired(kNoDeadline));
  EXPECT_TRUE(deadline_expired(std::chrono::steady_clock::now() -
                               std::chrono::milliseconds(1)));
  const Deadline soon = deadline_after_ms(60000);
  EXPECT_FALSE(deadline_expired(soon));
}

TEST(Deadline, ExceededMessagesCarryThePrefix) {
  const DeadlineExceeded bare;
  EXPECT_TRUE(is_deadline_exceeded_message(bare.what()));
  const DeadlineExceeded detailed("parked too long");
  EXPECT_TRUE(is_deadline_exceeded_message(detailed.what()));
  EXPECT_NE(std::string(detailed.what()).find("parked too long"), std::string::npos);
  EXPECT_FALSE(is_deadline_exceeded_message("some other error"));
  EXPECT_FALSE(is_deadline_exceeded_message(""));
}

// ----------------------------------------------------------- retry policy

TEST(RetryPolicy, FirstAttemptNeverWaits) {
  net::RetryPolicy p;
  EXPECT_EQ(p.backoff_for(0).count(), 0);
}

TEST(RetryPolicy, ZeroJitterIsExactExponentialWithCap) {
  net::RetryPolicy p;
  p.initial_backoff_ms = 10;
  p.multiplier = 2.0;
  p.max_backoff_ms = 50;
  p.jitter = 0.0;
  EXPECT_EQ(p.backoff_for(1).count(), 10);
  EXPECT_EQ(p.backoff_for(2).count(), 20);
  EXPECT_EQ(p.backoff_for(3).count(), 40);
  EXPECT_EQ(p.backoff_for(4).count(), 50);  // capped
  EXPECT_EQ(p.backoff_for(9).count(), 50);
}

TEST(RetryPolicy, JitterIsBoundedAndDeterministic) {
  net::RetryPolicy p;
  p.initial_backoff_ms = 100;
  p.multiplier = 1.0;  // nominal is flat 100 ms, so the bounds are tight
  p.max_backoff_ms = 1000;
  p.jitter = 0.2;
  for (unsigned attempt = 1; attempt <= 8; ++attempt) {
    const auto ms = p.backoff_for(attempt).count();
    EXPECT_GE(ms, 80) << "attempt " << attempt;
    EXPECT_LE(ms, 120) << "attempt " << attempt;
    EXPECT_EQ(ms, p.backoff_for(attempt).count());  // pure function
  }
}

TEST(RetryPolicy, SeedsProduceDistinctSchedules) {
  net::RetryPolicy a, b;
  a.jitter = b.jitter = 0.3;
  a.seed = 1;
  b.seed = 2;
  bool any_differ = false;
  for (unsigned attempt = 1; attempt <= 8; ++attempt) {
    if (a.backoff_for(attempt) != b.backoff_for(attempt)) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

// ----------------------------------------------- dispatcher queue deadlines

std::vector<Query> tagged_batch(Vertex tag) { return {Query{tag, 0, 0}}; }

TEST(FairDispatcherDeadline, ExpiredQueuedBatchFailsInsteadOfDispatching) {
  struct {
    std::deque<service::BatchCallback> captured;
  } sink;
  registry::FairDispatcher disp(
      [&](std::shared_ptr<const Snapshot>, std::vector<Query>,
          service::BatchCallback done, Deadline) { sink.captured.push_back(std::move(done)); },
      {.per_tenant_inflight = 1, .per_tenant_queue = 8, .total_inflight = 8});

  auto noop = [](service::BatchResult) {};
  ASSERT_EQ(disp.submit(1, nullptr, tagged_batch(1), noop),
            registry::DispatchVerdict::kDispatched);

  bool expired_seen = false;
  const Deadline past = std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  ASSERT_EQ(disp.submit(1, nullptr, tagged_batch(2),
                        [&](service::BatchResult r) {
                          ASSERT_NE(r.error, nullptr);
                          try {
                            std::rethrow_exception(r.error);
                          } catch (const DeadlineExceeded& e) {
                            expired_seen = is_deadline_exceeded_message(e.what());
                          }
                        },
                        /*weight=*/1, past),
            registry::DispatchVerdict::kQueued);

  // Completing the inflight batch pumps the queue; the parked batch is past
  // its deadline, so it completes exceptionally and never reaches the sink.
  ASSERT_EQ(sink.captured.size(), 1u);
  auto done = std::move(sink.captured.front());
  sink.captured.pop_front();
  done(service::BatchResult{});
  EXPECT_TRUE(expired_seen);
  EXPECT_EQ(sink.captured.size(), 0u);  // nothing new dispatched
  EXPECT_EQ(disp.deadline_expirations(), 1u);
  EXPECT_EQ(disp.inflight_batches(), 0u);
}

// -------------------------------------------------- service-level deadlines

/// Small deterministic instance shared by the service and wire tests.
struct ChaosFixture {
  Graph g{0};
  std::vector<Vertex> sources{0, 11, 29};
  service::QueryService svc{{.threads = 2, .min_parallel_batch = 64}};
  std::shared_ptr<const Snapshot> oracle;

  ChaosFixture() {
    Rng rng(77);
    g = gen::connected_gnp(60, 0.08, rng);
    oracle = svc.build(g, sources);
  }

  std::vector<Query> random_queries(std::size_t count, std::uint64_t seed) const {
    Rng rng(seed);
    return service::random_query_batch(sources, g.num_vertices(), g.num_edges(), count,
                                       rng);
  }
};

std::vector<service::VitalityQuery> vitality_queries(const ChaosFixture& fx,
                                                     std::size_t count,
                                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<service::VitalityQuery> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({fx.sources[rng.next_below(fx.sources.size())],
                   static_cast<Vertex>(rng.next_below(fx.g.num_vertices())),
                   1 + static_cast<std::uint32_t>(rng.next_below(6))});
  }
  return out;
}

std::vector<service::VickreyQuery> vickrey_queries(const ChaosFixture& fx,
                                                   std::size_t count,
                                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<service::VickreyQuery> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({fx.sources[rng.next_below(fx.sources.size())],
                   static_cast<Vertex>(rng.next_below(fx.g.num_vertices()))});
  }
  return out;
}

/// |F| cycles 0/1/2 so every k-fail answer path (base read, oracle row,
/// bounded BFS of G - F) sits in each batch.
std::vector<service::KFailQuery> kfail_queries(const ChaosFixture& fx, std::size_t count,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<service::KFailQuery> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    service::KFailQuery q{fx.sources[rng.next_below(fx.sources.size())],
                          static_cast<Vertex>(rng.next_below(fx.g.num_vertices())),
                          {}};
    while (q.fails.size() < i % 3) {
      const EdgeId e = static_cast<EdgeId>(rng.next_below(fx.g.num_edges()));
      if (std::find(q.fails.begin(), q.fails.end(), e) == q.fails.end())
        q.fails.push_back(e);
    }
    out.push_back(std::move(q));
  }
  return out;
}

/// Parks every worker of `svc` until the returned promise is fulfilled, so
/// a submitted batch deterministically waits behind the wedge.
std::promise<void> wedge_pool(service::QueryService& svc) {
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  for (unsigned i = 0; i < svc.num_threads(); ++i) {
    svc.run_async([gate] { gate.wait(); });
  }
  return release;
}

TEST(ServiceDeadline, ExpiredDeadlineFailsTheBatchWithoutAnswering) {
  ChaosFixture fx;
  const auto queries = fx.random_queries(200, 1);
  const Deadline past = std::chrono::steady_clock::now() - std::chrono::milliseconds(1);

  std::promise<service::BatchResult> done;
  fx.svc.submit_batch(fx.oracle, queries,
                      [&](service::BatchResult r) { done.set_value(std::move(r)); }, past);
  const service::BatchResult r = done.get_future().get();
  ASSERT_NE(r.error, nullptr);
  EXPECT_TRUE(r.answers.empty());
  try {
    std::rethrow_exception(r.error);
  } catch (const DeadlineExceeded& e) {
    EXPECT_TRUE(is_deadline_exceeded_message(e.what()));
  }
}

TEST(ServiceDeadline, SyncPathThrowsDeadlineExceeded) {
  ChaosFixture fx;
  const auto queries = fx.random_queries(200, 2);
  const Deadline past = std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  EXPECT_THROW(fx.svc.query_batch(*fx.oracle, queries, past), DeadlineExceeded);
}

TEST(ServiceDeadline, GenerousDeadlineAnswersIdentically) {
  ChaosFixture fx;
  const auto queries = fx.random_queries(500, 3);
  const auto want = fx.svc.query_batch(*fx.oracle, queries);
  EXPECT_EQ(fx.svc.query_batch(*fx.oracle, queries, deadline_after_ms(60000)), want);
}

// Every typed workload entry point enforces the same deadline contract as
// query_batch: sync throws, the callback path delivers the error channel.
TEST(ServiceDeadline, WorkloadEntryPointsHonorExpiredDeadlines) {
  ChaosFixture fx;
  const auto vq = vitality_queries(fx, 120, 20);
  const auto pq = vickrey_queries(fx, 120, 21);
  const auto fq = kfail_queries(fx, 120, 22);
  const Deadline past = std::chrono::steady_clock::now() - std::chrono::milliseconds(1);

  EXPECT_THROW(fx.svc.vitality_batch(*fx.oracle, vq, past), DeadlineExceeded);
  EXPECT_THROW(fx.svc.vickrey_batch(*fx.oracle, pq, past), DeadlineExceeded);
  EXPECT_THROW(fx.svc.kfail_batch(*fx.oracle, fq, past), DeadlineExceeded);

  std::promise<service::VitalityBatchResult> vp;
  fx.svc.submit_vitality(fx.oracle, vq,
                         [&](service::VitalityBatchResult r) { vp.set_value(std::move(r)); },
                         past);
  const service::VitalityBatchResult vr = vp.get_future().get();
  ASSERT_NE(vr.error, nullptr);
  EXPECT_TRUE(vr.results.empty());
  EXPECT_THROW(std::rethrow_exception(vr.error), DeadlineExceeded);

  std::promise<service::VickreyBatchResult> pp;
  fx.svc.submit_vickrey(fx.oracle, pq,
                        [&](service::VickreyBatchResult r) { pp.set_value(std::move(r)); },
                        past);
  const service::VickreyBatchResult pr = pp.get_future().get();
  ASSERT_NE(pr.error, nullptr);
  EXPECT_TRUE(pr.results.empty());
  EXPECT_THROW(std::rethrow_exception(pr.error), DeadlineExceeded);

  std::promise<service::BatchResult> fp;
  fx.svc.submit_kfail(fx.oracle, fq,
                      [&](service::BatchResult r) { fp.set_value(std::move(r)); }, past);
  const service::BatchResult fr = fp.get_future().get();
  ASSERT_NE(fr.error, nullptr);
  EXPECT_TRUE(fr.answers.empty());
  EXPECT_THROW(std::rethrow_exception(fr.error), DeadlineExceeded);
}

// Acceptance: a delay failpoint that pushes the answer path past its budget
// must surface DEADLINE_EXCEEDED within 2x the deadline, not answer late.
TEST(ServiceDeadline, DelayFailpointForcesDeadlineWithinTwiceTheBudget) {
  SKIP_WITHOUT_FAILPOINTS();
  ChaosFixture fx;
  const auto queries = fx.random_queries(200, 4);
  constexpr unsigned kDeadlineMs = 150;
  ASSERT_TRUE(fail::set("service.answer", "delay:180000*1"));  // 180 ms, one-shot

  const auto t0 = std::chrono::steady_clock::now();
  std::promise<service::BatchResult> done;
  fx.svc.submit_batch(fx.oracle, queries,
                      [&](service::BatchResult r) { done.set_value(std::move(r)); },
                      deadline_after_ms(kDeadlineMs));
  const service::BatchResult r = done.get_future().get();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  fail::clear("service.answer");

  ASSERT_NE(r.error, nullptr);
  try {
    std::rethrow_exception(r.error);
  } catch (const DeadlineExceeded& e) {
    EXPECT_TRUE(is_deadline_exceeded_message(e.what()));
  }
  EXPECT_LT(elapsed.count(), 2 * kDeadlineMs);
}

// The same acceptance for each typed workload path: the service.answer site
// fires on every submit_* closure, so a one-shot stall past the budget must
// turn into the error channel, opcode by opcode, never a late answer.
TEST(ServiceDeadline, DelayFailpointFailsEachWorkloadBatchInsteadOfAnsweringLate) {
  SKIP_WITHOUT_FAILPOINTS();
  ChaosFixture fx;
  constexpr unsigned kDeadlineMs = 150;

  const auto expect_deadline_error = [&](std::exception_ptr error) {
    ASSERT_NE(error, nullptr);
    try {
      std::rethrow_exception(error);
    } catch (const DeadlineExceeded& e) {
      EXPECT_TRUE(is_deadline_exceeded_message(e.what()));
    }
  };

  ASSERT_TRUE(fail::set("service.answer", "delay:180000*1"));
  std::promise<service::VitalityBatchResult> vp;
  fx.svc.submit_vitality(fx.oracle, vitality_queries(fx, 120, 25),
                         [&](service::VitalityBatchResult r) { vp.set_value(std::move(r)); },
                         deadline_after_ms(kDeadlineMs));
  const service::VitalityBatchResult vr = vp.get_future().get();
  EXPECT_TRUE(vr.results.empty());
  expect_deadline_error(vr.error);

  ASSERT_TRUE(fail::set("service.answer", "delay:180000*1"));
  std::promise<service::VickreyBatchResult> pp;
  fx.svc.submit_vickrey(fx.oracle, vickrey_queries(fx, 120, 26),
                        [&](service::VickreyBatchResult r) { pp.set_value(std::move(r)); },
                        deadline_after_ms(kDeadlineMs));
  const service::VickreyBatchResult pr = pp.get_future().get();
  EXPECT_TRUE(pr.results.empty());
  expect_deadline_error(pr.error);

  ASSERT_TRUE(fail::set("service.answer", "delay:180000*1"));
  std::promise<service::BatchResult> fp;
  fx.svc.submit_kfail(fx.oracle, kfail_queries(fx, 120, 27),
                      [&](service::BatchResult r) { fp.set_value(std::move(r)); },
                      deadline_after_ms(kDeadlineMs));
  const service::BatchResult fr = fp.get_future().get();
  fail::clear("service.answer");
  EXPECT_TRUE(fr.answers.empty());
  expect_deadline_error(fr.error);
}

// ------------------------------------------------------- crash-safe saves

TEST(SnapshotSave, ReplacesExistingFileAtomically) {
  ChaosFixture fx;
  Rng rng(5);
  const Graph other = gen::connected_gnp(40, 0.1, rng);
  const auto b = fx.svc.build(other, {0, 7});
  const std::string path = ::testing::TempDir() + "/chaos_save.snap";

  fx.oracle->save(path);
  EXPECT_EQ(fx.svc.load(path)->content_digest(), fx.oracle->content_digest());
  b->save(path);  // overwrite must swap whole files, never mix bytes
  EXPECT_EQ(fx.svc.load(path)->content_digest(), b->content_digest());
  std::remove(path.c_str());
}

#if defined(__unix__) || defined(__APPLE__)
TEST(SnapshotSave, CrashMidSaveLeavesTheOldFileIntact) {
  SKIP_WITHOUT_FAILPOINTS();
  if (kTsanBuild) GTEST_SKIP() << "fork-based; skipped under TSan";
  ChaosFixture fx;
  Rng rng(6);
  const Graph other = gen::connected_gnp(40, 0.1, rng);
  const auto b = fx.svc.build(other, {0, 7});
  const std::string path = ::testing::TempDir() + "/chaos_crash_save.snap";
  fx.oracle->save(path);

  // The failpoint sits between fsync and rename: the child dies with the
  // full new image written to the temp file but the target untouched.
  ASSERT_TRUE(fail::set("snapshot.save", "crash*1"));
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    b->save(path);       // fires the crash
    std::_Exit(0);       // not reached
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  fail::clear("snapshot.save");
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), fail::kCrashExitCode);

  // The interrupted save must not have harmed the previous image.
  EXPECT_EQ(fx.svc.load(path)->content_digest(), fx.oracle->content_digest());
  std::remove(path.c_str());
  std::remove((path + ".tmp." + std::to_string(pid)).c_str());
}
#endif

// --------------------------------------------- registry timeouts and reaps

TEST(RegistryChaos, BuildTimeoutFailsTheTenantInsteadOfWedging) {
  ChaosFixture fx;
  registry::OracleRegistry reg(fx.svc, {.build_timeout = std::chrono::milliseconds(40)});
  auto release = wedge_pool(fx.svc);  // the build task never gets a thread

  std::promise<registry::RegisterOutcome> outcome;
  ASSERT_TRUE(reg.register_graph(
      fx.g.num_vertices(), fx.g.edges(), fx.sources, Config{},
      [&](registry::RegisterOutcome o) { outcome.set_value(std::move(o)); }));
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  reg.poke();  // in production the server tick drives this

  const registry::RegisterOutcome out = outcome.get_future().get();
  EXPECT_EQ(out.state, registry::OracleState::kFailed);
  EXPECT_NE(out.error.find("timed out"), std::string::npos);

  // The late build result (the pool task still runs) must be discarded,
  // not double-delivered; the tenant stays listable as the failure.
  release.set_value();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto listed = reg.list();
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].state, registry::OracleState::kFailed);
}

TEST(RegistryChaos, FailedTenantIsReapedAfterTtl) {
  ChaosFixture fx;
  registry::OracleRegistry reg(fx.svc, {.failed_ttl = std::chrono::milliseconds(60)});
  std::promise<registry::RegisterOutcome> outcome;
  ASSERT_TRUE(reg.register_graph(
      fx.g.num_vertices(), fx.g.edges(), {fx.g.num_vertices() + 7},  // invalid
      Config{}, [&](registry::RegisterOutcome o) { outcome.set_value(std::move(o)); }));
  EXPECT_EQ(outcome.get_future().get().state, registry::OracleState::kFailed);
  EXPECT_EQ(reg.tenant_count(), 1u);  // retained for reason visibility

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  reg.poke();
  EXPECT_EQ(reg.tenant_count(), 0u);
}

TEST(RegistryChaos, InjectedBuildFailureSurfacesItsReason) {
  SKIP_WITHOUT_FAILPOINTS();
  ChaosFixture fx;
  registry::OracleRegistry reg(fx.svc);
  ASSERT_TRUE(fail::set("registry.build", "error*1"));
  std::promise<registry::RegisterOutcome> outcome;
  ASSERT_TRUE(reg.register_graph(
      fx.g.num_vertices(), fx.g.edges(), fx.sources, Config{},
      [&](registry::RegisterOutcome o) { outcome.set_value(std::move(o)); }));
  const registry::RegisterOutcome out = outcome.get_future().get();
  fail::clear("registry.build");
  EXPECT_EQ(out.state, registry::OracleState::kFailed);
  EXPECT_NE(out.error.find("injected"), std::string::npos);
}

// --------------------------------------------------------- wire-level legs

/// Server on an ephemeral loopback port with its run() thread.
struct TestServer {
  net::Server server;
  std::thread thread;

  TestServer(service::QueryService& svc, std::shared_ptr<const Snapshot> oracle,
             net::ServerOptions opts = {})
      : server(svc, std::move(oracle), opts), thread([this] { server.run(); }) {}

  ~TestServer() {
    server.shutdown();
    thread.join();
  }

  net::ClientOptions client_options() const {
    net::ClientOptions copts;
    copts.port = server.port();
    copts.connect_retries = 10;
    return copts;
  }
};

struct RegistryTestServer {
  registry::OracleRegistry registry;
  net::Server server;
  std::thread thread;

  RegistryTestServer(service::QueryService& svc, std::shared_ptr<const Snapshot> oracle,
                     registry::RegistryOptions ropts = {}, net::ServerOptions sopts = {})
      : registry(svc, ropts),
        server(svc, std::move(oracle), &registry, sopts),
        thread([this] { server.run(); }) {}

  ~RegistryTestServer() {
    server.shutdown();
    thread.join();
  }

  net::ClientOptions client_options() const {
    net::ClientOptions copts;
    copts.port = server.port();
    copts.connect_retries = 10;
    return copts;
  }
};

TEST(NetDeadline, BatchParkedPastItsDeadlineReturnsDeadlineError) {
  SKIP_WITHOUT_EPOLL();
  ChaosFixture fx;
  TestServer ts(fx.svc, fx.oracle);
  net::Client client(ts.client_options());
  const auto queries = fx.random_queries(300, 10);

  auto release = wedge_pool(fx.svc);
  const std::uint64_t id = client.send(queries, std::nullopt, /*deadline_ms=*/30);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  release.set_value();

  EXPECT_THROW(client.wait(id), net::DeadlineError);
  EXPECT_GE(ts.server.stats().deadline_exceeded, 1u);
}

// The typed opcodes ride the same wire-deadline machinery: a KFAIL_BATCH
// parked behind a wedged pool past its budget comes back as DEADLINE, and
// the connection then serves a clean replay of the same batch.
TEST(NetDeadline, KFailBatchParkedPastItsDeadlineReturnsDeadlineError) {
  SKIP_WITHOUT_EPOLL();
  ChaosFixture fx;
  const auto queries = kfail_queries(fx, 150, 16);
  const auto want = fx.svc.kfail_batch(*fx.oracle, queries);
  TestServer ts(fx.svc, fx.oracle);
  net::Client client(ts.client_options());

  auto release = wedge_pool(fx.svc);
  const std::uint64_t id = client.send_kfail(queries, std::nullopt, /*deadline_ms=*/30);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  release.set_value();

  EXPECT_THROW(client.wait_kfail(id), net::DeadlineError);
  EXPECT_GE(ts.server.stats().deadline_exceeded, 1u);
  EXPECT_EQ(client.kfail_batch(queries), want);
}

TEST(NetDeadline, GenerousWireDeadlineAnswersByteForByte) {
  SKIP_WITHOUT_EPOLL();
  ChaosFixture fx;
  const auto queries = fx.random_queries(1000, 11);
  const auto want = fx.svc.query_batch(*fx.oracle, queries);
  TestServer ts(fx.svc, fx.oracle);
  net::Client client(ts.client_options());
  EXPECT_EQ(client.query_batch(queries, std::nullopt, 60000), want);
  EXPECT_EQ(ts.server.stats().deadline_exceeded, 0u);
}

TEST(NetDeadline, RetryBudgetExhaustsAsDeadlineError) {
  SKIP_WITHOUT_EPOLL();
  ChaosFixture fx;
  TestServer ts(fx.svc, fx.oracle);
  net::ClientOptions copts = ts.client_options();
  copts.deadline_grace_ms = 200;
  net::Client client(copts);
  const auto queries = fx.random_queries(100, 12);

  // Every attempt parks behind the wedge until past its (tiny) budget; the
  // client's local wait bound (deadline + grace) must cut each one loose
  // and the retry loop must give up on schedule rather than spin forever.
  auto release = wedge_pool(fx.svc);
  net::RetryPolicy policy;
  policy.deadline_ms = 150;
  policy.max_attempts = 10;
  policy.initial_backoff_ms = 20;
  policy.jitter = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(client.query_batch_retry(queries, policy), net::DeadlineError);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  release.set_value();
  EXPECT_LT(elapsed.count(), 5000);  // bounded, not wedged
}

TEST(NetEviction, IdleConnectionIsEvicted) {
  SKIP_WITHOUT_EPOLL();
  ChaosFixture fx;
  net::ServerOptions sopts;
  sopts.idle_timeout_ms = 120;
  TestServer ts(fx.svc, fx.oracle, sopts);
  net::Client client(ts.client_options());
  const auto queries = fx.random_queries(100, 13);
  EXPECT_EQ(client.query_batch(queries), fx.svc.query_batch(*fx.oracle, queries));

  // Fall silent past the idle budget; the server reclaims the socket.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  EXPECT_GE(ts.server.stats().connections_evicted, 1u);
  EXPECT_THROW(client.query_batch(queries), std::runtime_error);
}

TEST(NetChaos, StalledFlushIsEvictedAndResendRecovers) {
  SKIP_WITHOUT_EPOLL();
  SKIP_WITHOUT_FAILPOINTS();
  ChaosFixture fx;
  const auto queries = fx.random_queries(800, 14);
  const auto want = fx.svc.query_batch(*fx.oracle, queries);

  net::ServerOptions sopts;
  sopts.write_stall_timeout_ms = 150;
  TestServer ts(fx.svc, fx.oracle, sopts);
  net::ClientOptions copts = ts.client_options();
  copts.resend_on_reconnect = true;
  net::Client client(copts);

  // One reply flush "takes nothing" (a stuck socket); the stall timer must
  // evict the connection and the client's resend must replay the batch on a
  // fresh one — same id, byte-identical answers.
  ASSERT_TRUE(fail::set("server.flush", "error*1"));
  const auto got = client.query_batch(queries);
  fail::clear("server.flush");
  EXPECT_EQ(got, want);
  EXPECT_GE(ts.server.stats().connections_evicted, 1u);
}

TEST(NetChaos, TruncatedReceivesAreRetriedToIdenticalAnswers) {
  SKIP_WITHOUT_EPOLL();
  SKIP_WITHOUT_FAILPOINTS();
  ChaosFixture fx;
  const auto queries = fx.random_queries(600, 15);
  const auto want = fx.svc.query_batch(*fx.oracle, queries);
  TestServer ts(fx.svc, fx.oracle);
  net::Client client(ts.client_options());

  // Every 2nd receive loses its connection mid-frame, at most 4 times; the
  // retry loop reconnects and resends (QUERY_BATCH is idempotent). Every
  // completed answer must be byte-identical to the in-process result.
  ASSERT_TRUE(fail::set("client.recv_truncate", "error%2*4"));
  net::RetryPolicy policy;
  policy.max_attempts = 12;
  policy.initial_backoff_ms = 1;
  for (int round = 0; round < 6; ++round) {
    EXPECT_EQ(client.query_batch_retry(queries, policy), want) << "round " << round;
  }
  fail::clear("client.recv_truncate");
  EXPECT_GE(fail::fire_count("client.recv_truncate"), 1u);
}

TEST(NetChaos, StalledAnswerFailsEachWorkloadBatchButNotTheConnection) {
  SKIP_WITHOUT_EPOLL();
  SKIP_WITHOUT_FAILPOINTS();
  ChaosFixture fx;
  TestServer ts(fx.svc, fx.oracle);
  net::Client client(ts.client_options());
  const auto vq = vitality_queries(fx, 80, 51);
  const auto pq = vickrey_queries(fx, 80, 52);
  const auto fq = kfail_queries(fx, 80, 53);

  // Opcode by opcode: a one-shot 180 ms stall against a 60 ms wire budget
  // turns exactly that batch into an ERROR frame (mapped to DeadlineError
  // client-side); the connection survives and an immediate clean resend on
  // the SAME socket matches the in-process answers.
  ASSERT_TRUE(fail::set("service.answer", "delay:180000*1"));
  EXPECT_THROW(client.vitality_batch(vq, std::nullopt, /*deadline_ms=*/60),
               net::DeadlineError);
  EXPECT_EQ(client.vitality_batch(vq), fx.svc.vitality_batch(*fx.oracle, vq));

  ASSERT_TRUE(fail::set("service.answer", "delay:180000*1"));
  EXPECT_THROW(client.vickrey_batch(pq, std::nullopt, /*deadline_ms=*/60),
               net::DeadlineError);
  EXPECT_EQ(client.vickrey_batch(pq), fx.svc.vickrey_batch(*fx.oracle, pq));

  ASSERT_TRUE(fail::set("service.answer", "delay:180000*1"));
  EXPECT_THROW(client.kfail_batch(fq, std::nullopt, /*deadline_ms=*/60),
               net::DeadlineError);
  EXPECT_EQ(client.kfail_batch(fq), fx.svc.kfail_batch(*fx.oracle, fq));
  fail::clear("service.answer");

  EXPECT_GE(ts.server.stats().deadline_exceeded, 3u);
  EXPECT_EQ(ts.server.stats().protocol_errors, 0u);
}

TEST(NetChaos, InjectedFailuresAreVisibleInScrapedCounters) {
  SKIP_WITHOUT_EPOLL();
  SKIP_WITHOUT_FAILPOINTS();
  ChaosFixture fx;
  TestServer ts(fx.svc, fx.oracle);
  net::Client client(ts.client_options());
  const auto queries = fx.random_queries(200, 61);

  // Failpoint sites and deadline expirations are exported through the
  // metrics registry, so an operator sees injected chaos in the same STATS
  // snapshot (and /metrics scrape) as the serving counters. Server counters
  // are compared as deltas (the registry is process-global and earlier
  // tests may have bumped them); failpoint counters are compared as
  // absolutes, because fail::set() zeroes a site's hits/fires.
  const auto counter_value = [](const net::StatsSnapshotFrame& snap,
                                const std::string& name) -> std::uint64_t {
    for (const auto& c : snap.counters) {
      if (c.name == name) return c.value;
    }
    return 0;
  };
  const net::StatsSnapshotFrame before = client.stats();

  ASSERT_TRUE(fail::set("service.answer", "delay:180000*1"));
  EXPECT_THROW(client.query_batch(queries, std::nullopt, /*deadline_ms=*/60),
               net::DeadlineError);
  fail::clear("service.answer");

  const net::StatsSnapshotFrame after = client.stats();
  EXPECT_GE(counter_value(after, "failpoint.service.answer.hits"), 1u);
  EXPECT_GE(counter_value(after, "failpoint.service.answer.fires"), 1u);
  EXPECT_GE(counter_value(after, "server.deadline_exceeded"),
            counter_value(before, "server.deadline_exceeded") + 1);

  // The failed batch still went through decode: the per-stage histograms
  // carry it.
  bool saw_decode = false;
  for (const auto& h : after.histograms) {
    if (h.name == "query_latency" && h.label == "decode" && h.count > 0) saw_decode = true;
  }
  EXPECT_TRUE(saw_decode);
}

TEST(NetRegistryChaos, FailedWireRegistrationIsListableWithItsReason) {
  SKIP_WITHOUT_EPOLL();
  ChaosFixture fx;
  RegistryTestServer ts(fx.svc, nullptr);
  net::Client client(ts.client_options());
  ASSERT_TRUE(client.registry_enabled());

  // Out-of-range source: the build fails server-side; the register call
  // reports it and LIST_ORACLES carries the reason until unregistered.
  std::vector<std::pair<Vertex, Vertex>> edges(fx.g.edges().begin(), fx.g.edges().end());
  const std::vector<Vertex> bad_sources{fx.g.num_vertices() + 7};
  EXPECT_THROW(client.register_graph(fx.g.num_vertices(), edges, bad_sources),
               std::runtime_error);

  const auto listed = client.list_oracles();
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].state, registry::OracleState::kFailed);
  EXPECT_FALSE(listed[0].error.empty());

  // Operators can clear the tombstone explicitly.
  const auto ack = client.unregister(listed[0].digest);
  EXPECT_EQ(ack.state, registry::OracleState::kUnregistered);
  EXPECT_TRUE(client.list_oracles().empty());
}

// Admission control treats a VITALITY_BATCH exactly like a point batch:
// overflow past the zero-length tenant queue is answered BUSY, BUSY means
// "did not run", and the typed retry wrapper replays it byte-identically.
TEST(NetRegistryChaos, VitalityBusySignalsAndTypedRetrySucceeds) {
  SKIP_WITHOUT_EPOLL();
  ChaosFixture fx;
  const auto b1 = vitality_queries(fx, 200, 61);
  const auto b2 = vitality_queries(fx, 100, 62);
  const auto want1 = fx.svc.vitality_batch(*fx.oracle, b1);
  const auto want2 = fx.svc.vitality_batch(*fx.oracle, b2);

  net::ServerOptions sopts;
  sopts.dispatch = {.per_tenant_inflight = 1, .per_tenant_queue = 0, .total_inflight = 4};
  RegistryTestServer ts(fx.svc, fx.oracle, {}, sopts);
  net::Client client(ts.client_options());

  // Wedge the pool so the first batch deterministically stays in flight;
  // the second then overflows the zero-length queue.
  std::promise<void> release = wedge_pool(fx.svc);
  const std::uint64_t id1 = client.send_vitality(b1);
  const std::uint64_t id2 = client.send_vitality(b2);
  try {
    client.wait_vitality(id2);
    FAIL() << "expected BUSY";
  } catch (const net::BusyError& ex) {
    EXPECT_NE(std::string(ex.what()).find("busy"), std::string::npos);
  }
  release.set_value();
  EXPECT_EQ(client.wait_vitality(id1), want1);
  EXPECT_EQ(ts.server.stats().busy_rejected, 1u);

  net::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_ms = 5;
  EXPECT_EQ(client.vitality_batch_retry(b2, policy), want2);
}

// ------------------------------------------------------ shard-worker chaos

#if defined(__unix__)
Snapshot demo_snapshot(Vertex n, std::uint32_t sigma, std::uint64_t seed) {
  Rng rng(seed);
  const Graph g = gen::connected_avg_degree(n, 6.0, rng);
  std::vector<Vertex> sources;
  for (std::uint32_t i = 0; i < sigma; ++i) sources.push_back(i * (n / sigma));
  return Snapshot::capture(solve_msrp(g, sources));
}

std::vector<Query> shard_queries(const Snapshot& oracle, std::size_t count,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({oracle.sources()[rng.next_below(oracle.num_sources())],
                   static_cast<Vertex>(rng.next_below(oracle.num_vertices())),
                   static_cast<EdgeId>(rng.next_below(oracle.num_edges()))});
  }
  return out;
}

TEST(ShardChaos, KillWhileFutexParkedRespawnsAndMatches) {
  if (kTsanBuild) GTEST_SKIP() << "fork-based; skipped under TSan";
  const Snapshot oracle = demo_snapshot(150, 4, 21);
  service::ShardRouterOptions opts;
  opts.shards = 2;
  service::ShardRouter router(oracle, opts);

  const auto queries = shard_queries(oracle, 2000, 22);
  const auto want = router.query_batch(queries);

  // With no batch in flight both workers are parked on their futex
  // doorbells. SIGKILL one there — the next batch must detect the death,
  // respawn against the placed segments, and answer byte-identically.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const long victim = router.worker_pid(0);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(static_cast<pid_t>(victim), SIGKILL), 0);

  EXPECT_EQ(router.query_batch(queries), want);
  EXPECT_GE(router.stats().respawns, 1u);
  EXPECT_NE(router.worker_pid(0), victim);
}

TEST(ShardChaos, CorruptedAttachIsDetectedAndHealedByRespawn) {
  if (kTsanBuild) GTEST_SKIP() << "fork-based; skipped under TSan";
  SKIP_WITHOUT_FAILPOINTS();
  const Snapshot oracle = demo_snapshot(150, 4, 23);
  const auto queries = shard_queries(oracle, 1500, 24);

  service::ShardRouterOptions opts;
  opts.shards = 1;
  service::ShardRouter router(oracle, opts);
  const auto want = router.query_batch(queries);

  // Every respawned worker XORs a byte mid-segment at attach. After the
  // kill, the first replacement corrupts the (shared) image, fails its
  // attach verify, and exits with the bad-snapshot code; the next one XORs
  // the same byte back — restoring the image — verifies clean, and serves.
  // (A corrupt FIRST spawn is a constructor failure by design: a server
  // that cannot attach its snapshot must not come up at all.)
  ASSERT_TRUE(fail::set("shard_worker.attach_corrupt", "error"));
  const long victim = router.worker_pid(0);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(static_cast<pid_t>(victim), SIGKILL), 0);
  const auto got = router.query_batch(queries);
  fail::clear("shard_worker.attach_corrupt");

  EXPECT_EQ(got, want);
  EXPECT_GE(router.stats().respawns, 2u);  // the corruptor, then the healer
}
#endif  // __unix__

}  // namespace
}  // namespace msrp
