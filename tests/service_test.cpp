// Tests for the batched query service layer: snapshot round trips,
// concurrent batches against the brute-force oracle, LRU cache eviction,
// and the thread pool underneath it all.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>

#include "core/msrp.hpp"
#include "core/serialize.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "rp/oracle.hpp"
#include "service/query_service.hpp"

namespace msrp {
namespace {

using service::OracleKey;
using service::Query;
using service::Snapshot;

// ------------------------------------------------------------- snapshots ---

TEST(Snapshot, RoundTripReproducesEveryAnswer) {
  Rng rng(7);
  const Graph g = gen::connected_gnp(60, 0.08, rng);
  const std::vector<Vertex> sources{0, 17, 41};
  const MsrpResult res = solve_msrp(g, sources);

  const Snapshot snap = Snapshot::capture(res);
  std::stringstream ss;
  snap.write(ss);
  const Snapshot loaded = Snapshot::read(ss);

  EXPECT_EQ(loaded.num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  EXPECT_EQ(loaded.sources(), sources);
  EXPECT_EQ(loaded.content_digest(), snap.content_digest());

  for (const Vertex s : sources) {
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      EXPECT_EQ(loaded.shortest(s, t), res.shortest(s, t)) << "s=" << s << " t=" << t;
      const auto want = res.row(s, t);
      const auto got = loaded.row(s, t);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
      // avoiding() for every edge id, on-path and off-path alike.
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        ASSERT_EQ(loaded.avoiding(s, t, e), res.avoiding(s, t, e))
            << "s=" << s << " t=" << t << " e=" << e;
      }
    }
  }
}

TEST(Snapshot, AgreesWithTextSerialization) {
  Rng rng(11);
  const Graph g = gen::connected_gnp(40, 0.1, rng);
  const std::vector<Vertex> sources{3, 29};
  const MsrpResult res = solve_msrp(g, sources);

  std::stringstream text;
  write_result(text, res);
  const SerializedResult ser = SerializedResult::read(text);

  std::stringstream bin;
  Snapshot::capture(res).write(bin);
  const Snapshot snap = Snapshot::read(bin);

  for (const Vertex s : sources) {
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      EXPECT_EQ(snap.shortest(s, t), ser.shortest(s, t));
      const auto want = ser.row(s, t);
      const auto got = snap.row(s, t);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
    }
  }
}

TEST(Snapshot, InfinityAndUnreachableSurvive) {
  // Barbell: bridge edges are cut edges (replacement = inf). Plus an
  // isolated component for unreachable targets.
  const Graph barbell = gen::barbell(5, 4);
  const MsrpResult res = solve_msrp(barbell, {0});
  std::stringstream ss;
  Snapshot::capture(res).write(ss);
  const Snapshot snap = Snapshot::read(ss);
  for (Vertex t = 0; t < barbell.num_vertices(); ++t) {
    for (EdgeId e = 0; e < barbell.num_edges(); ++e) {
      EXPECT_EQ(snap.avoiding(0, t, e), res.avoiding(0, t, e));
    }
  }

  Graph split(6, {{0, 1}, {1, 2}, {4, 5}});
  const MsrpResult res2 = solve_msrp(split, {0});
  std::stringstream ss2;
  Snapshot::capture(res2).write(ss2);
  const Snapshot snap2 = Snapshot::read(ss2);
  EXPECT_EQ(snap2.shortest(0, 4), kInfDist);
  EXPECT_TRUE(snap2.row(0, 4).empty());
  EXPECT_EQ(snap2.avoiding(0, 4, 0), kInfDist);
}

TEST(Snapshot, FileRoundTrip) {
  Rng rng(3);
  const Graph g = gen::connected_gnp(30, 0.15, rng);
  const MsrpResult res = solve_msrp(g, {0, 15});
  const Snapshot snap = Snapshot::capture(res);

  const std::string path = testing::TempDir() + "/msrp_snapshot_test.bin";
  snap.save(path);
  const Snapshot loaded = Snapshot::load(path);
  EXPECT_EQ(loaded.content_digest(), snap.content_digest());
  EXPECT_GT(loaded.encoded_size(), 0u);
  std::remove(path.c_str());
}

TEST(Snapshot, CorruptionIsDetected) {
  const Graph g = gen::cycle(8);
  const MsrpResult res = solve_msrp(g, {0});
  std::stringstream ss;
  Snapshot::capture(res).write(ss);
  std::string image = ss.str();

  {
    std::stringstream truncated(image.substr(0, image.size() / 2));
    EXPECT_THROW(Snapshot::read(truncated), std::invalid_argument);
  }
  {
    std::string flipped = image;
    flipped[flipped.size() / 2] ^= 0x40;  // body byte -> checksum mismatch
    std::stringstream in(flipped);
    EXPECT_THROW(Snapshot::read(in), std::invalid_argument);
  }
  {
    std::string bad_magic = image;
    bad_magic[0] = 'X';
    std::stringstream in(bad_magic);
    EXPECT_THROW(Snapshot::read(in), std::invalid_argument);
  }
}

TEST(Snapshot, NonSourceAndOutOfRangeThrow) {
  const Graph g = gen::cycle(6);
  const MsrpResult res = solve_msrp(g, {0});
  const Snapshot snap = Snapshot::capture(res);
  EXPECT_THROW(snap.shortest(1, 2), std::invalid_argument);
  EXPECT_THROW(snap.avoiding(0, 99, 0), std::invalid_argument);
  EXPECT_THROW(snap.avoiding(0, 2, 99), std::invalid_argument);
}

// ------------------------------------------------------------ thread pool ---

TEST(ThreadPool, RunsEveryTask) {
  service::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, PropagatesTaskException) {
  service::ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // Pool stays usable afterwards.
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

// ---------------------------------------------------------- query service ---

TEST(QueryService, ConcurrentBatchMatchesBruteForceOracle) {
  Rng rng(21);
  const Graph g = gen::connected_gnp(80, 0.07, rng);
  const std::vector<Vertex> sources{0, 5, 9, 17};

  service::QueryService svc({.threads = 4, .cache_capacity = 2, .min_parallel_batch = 1});
  const auto oracle = svc.build(g, sources);

  // Every (s, t, e) triple: sigma * n * m queries, answered on 4 threads.
  std::vector<Query> batch;
  for (const Vertex s : sources) {
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      for (EdgeId e = 0; e < g.num_edges(); ++e) batch.push_back({s, t, e});
    }
  }
  const std::vector<Dist> got = svc.query_batch(*oracle, batch);
  ASSERT_EQ(got.size(), batch.size());

  std::size_t i = 0;
  for (const Vertex s : sources) {
    const RpOracle truth(g, s);
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      for (EdgeId e = 0; e < g.num_edges(); ++e, ++i) {
        ASSERT_EQ(got[i], truth.distance_avoiding(t, e))
            << "s=" << s << " t=" << t << " e=" << e;
      }
    }
  }
  EXPECT_EQ(svc.queries_served(), batch.size());
}

TEST(QueryService, BatchAnswersMatchSerialAvoiding) {
  Rng rng(5);
  const Graph g = gen::connected_avg_degree(120, 5.0, rng);
  const std::vector<Vertex> sources{2, 60, 90};
  const MsrpResult res = solve_msrp(g, sources);

  service::QueryService svc({.threads = 4, .min_parallel_batch = 1});
  const auto oracle = svc.build(g, sources);

  Rng qrng(77);
  std::vector<Query> batch;
  for (int i = 0; i < 20000; ++i) {
    batch.push_back({sources[qrng.next_below(sources.size())],
                     static_cast<Vertex>(qrng.next_below(g.num_vertices())),
                     static_cast<EdgeId>(qrng.next_below(g.num_edges()))});
  }
  const std::vector<Dist> got = svc.query_batch(*oracle, batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(got[i], res.avoiding(batch[i].s, batch[i].t, batch[i].e)) << "i=" << i;
  }
}

TEST(QueryService, ConcurrentCallersShareThePool) {
  Rng rng(31);
  const Graph g = gen::connected_gnp(60, 0.1, rng);
  const std::vector<Vertex> sources{0, 30};
  const MsrpResult res = solve_msrp(g, sources);

  service::QueryService svc({.threads = 4, .min_parallel_batch = 1});
  const auto oracle = svc.build(g, sources);

  Rng qrng(13);
  std::vector<Query> batch;
  for (int i = 0; i < 5000; ++i) {
    batch.push_back({sources[qrng.next_below(2)],
                     static_cast<Vertex>(qrng.next_below(g.num_vertices())),
                     static_cast<EdgeId>(qrng.next_below(g.num_edges()))});
  }
  std::vector<Dist> want(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    want[i] = res.avoiding(batch[i].s, batch[i].t, batch[i].e);
  }

  // Several caller threads hammer the same service; every batch must come
  // back complete and correct.
  constexpr int kCallers = 4, kRounds = 10;
  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        const std::vector<Dist> got = svc.query_batch(*oracle, batch);
        if (got != want) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : callers) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(svc.queries_served(), batch.size() * kCallers * kRounds);
}

TEST(QueryService, RejectsInvalidQueries) {
  const Graph g = gen::cycle(10);
  service::QueryService svc({.threads = 2});
  const auto oracle = svc.build(g, {0});
  EXPECT_THROW(svc.query_batch(*oracle, std::vector<Query>{{1, 2, 0}}),
               std::invalid_argument);  // not a source
  EXPECT_THROW(svc.query_batch(*oracle, std::vector<Query>{{0, 99, 0}}),
               std::invalid_argument);  // target out of range
  EXPECT_THROW(svc.query_batch(*oracle, std::vector<Query>{{0, 2, 99}}),
               std::invalid_argument);  // edge out of range
}

TEST(QueryService, RepeatBuildHitsCache) {
  Rng rng(9);
  const Graph g = gen::connected_gnp(40, 0.1, rng);
  service::QueryService svc({.threads = 1});
  const auto first = svc.build(g, {0, 20});
  const auto second = svc.build(g, {0, 20});
  EXPECT_EQ(first.get(), second.get());  // same oracle object, no re-solve
  EXPECT_EQ(svc.cache().hits(), 1u);

  // Different sources or config -> different oracle.
  const auto third = svc.build(g, {0, 21});
  EXPECT_NE(first.get(), third.get());
  Config exact;
  exact.exact = true;
  const auto fourth = svc.build(g, {0, 20}, exact);
  EXPECT_NE(first.get(), fourth.get());
}

// ------------------------------------------------------------ oracle cache ---

std::shared_ptr<const Snapshot> tiny_oracle(Vertex n) {
  const Graph g = gen::cycle(n);
  return std::make_shared<const Snapshot>(Snapshot::capture(solve_msrp(g, {0})));
}

TEST(OracleCache, EvictsLeastRecentlyUsed) {
  service::OracleCache cache(2);
  const OracleKey a{1, {0}, 0}, b{2, {0}, 0}, c{3, {0}, 0};
  cache.insert(a, tiny_oracle(4));
  cache.insert(b, tiny_oracle(5));
  EXPECT_EQ(cache.size(), 2u);

  EXPECT_NE(cache.find(a), nullptr);  // touch a: b becomes LRU
  cache.insert(c, tiny_oracle(6));    // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.find(b), nullptr);
  EXPECT_NE(cache.find(a), nullptr);
  EXPECT_NE(cache.find(c), nullptr);
}

TEST(OracleCache, GetOrBuildBuildsOnce) {
  service::OracleCache cache(2);
  const OracleKey key{42, {0}, 7};
  int builds = 0;
  auto builder = [&builds] {
    ++builds;
    return tiny_oracle(4);
  };
  const auto first = cache.get_or_build(key, builder);
  const auto second = cache.get_or_build(key, builder);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(OracleCache, EvictedOracleStaysAliveForHolders) {
  service::OracleCache cache(1);
  const OracleKey a{1, {0}, 0}, b{2, {0}, 0};
  auto held = tiny_oracle(4);
  cache.insert(a, held);
  cache.insert(b, tiny_oracle(5));  // evicts a
  EXPECT_EQ(cache.find(a), nullptr);
  // The shared_ptr we kept still answers queries.
  EXPECT_EQ(held->shortest(0, 2), 2u);
}

// ------------------------------------------------------------ graph digest ---

TEST(GraphDigest, DistinguishesGraphsAndIsStable) {
  const Graph a(4, {{0, 1}, {1, 2}, {2, 3}});
  const Graph b(4, {{0, 1}, {1, 2}, {2, 3}});
  const Graph c(4, {{0, 1}, {1, 2}, {1, 3}});
  const Graph d(5, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(io::graph_digest(a), io::graph_digest(b));
  EXPECT_NE(io::graph_digest(a), io::graph_digest(c));
  EXPECT_NE(io::graph_digest(a), io::graph_digest(d));
}

}  // namespace
}  // namespace msrp
