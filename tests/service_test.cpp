// Tests for the batched query service layer: snapshot round trips (both
// binary formats, including the v2 mmap path), sync and async batches
// against the brute-force oracle, single-flighted LRU cache builds racing
// eviction, and the thread pool underneath it all. The concurrency tests
// double as the TSan workload in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <sstream>
#include <thread>

#include "core/msrp.hpp"
#include "core/serialize.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "rp/oracle.hpp"
#include "service/query_service.hpp"

namespace msrp {
namespace {

using service::OracleKey;
using service::Query;
using service::Snapshot;

// ------------------------------------------------------------- snapshots ---

TEST(Snapshot, RoundTripReproducesEveryAnswer) {
  Rng rng(7);
  const Graph g = gen::connected_gnp(60, 0.08, rng);
  const std::vector<Vertex> sources{0, 17, 41};
  const MsrpResult res = solve_msrp(g, sources);

  const Snapshot snap = Snapshot::capture(res);
  std::stringstream ss;
  snap.write(ss);
  const Snapshot loaded = Snapshot::read(ss);

  EXPECT_EQ(loaded.num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  EXPECT_EQ(loaded.sources(), sources);
  EXPECT_EQ(loaded.content_digest(), snap.content_digest());

  for (const Vertex s : sources) {
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      EXPECT_EQ(loaded.shortest(s, t), res.shortest(s, t)) << "s=" << s << " t=" << t;
      const auto want = res.row(s, t);
      const auto got = loaded.row(s, t);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
      // avoiding() for every edge id, on-path and off-path alike.
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        ASSERT_EQ(loaded.avoiding(s, t, e), res.avoiding(s, t, e))
            << "s=" << s << " t=" << t << " e=" << e;
      }
    }
  }
}

TEST(Snapshot, AgreesWithTextSerialization) {
  Rng rng(11);
  const Graph g = gen::connected_gnp(40, 0.1, rng);
  const std::vector<Vertex> sources{3, 29};
  const MsrpResult res = solve_msrp(g, sources);

  std::stringstream text;
  write_result(text, res);
  const SerializedResult ser = SerializedResult::read(text);

  std::stringstream bin;
  Snapshot::capture(res).write(bin);
  const Snapshot snap = Snapshot::read(bin);

  for (const Vertex s : sources) {
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      EXPECT_EQ(snap.shortest(s, t), ser.shortest(s, t));
      const auto want = ser.row(s, t);
      const auto got = snap.row(s, t);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
    }
  }
}

TEST(Snapshot, InfinityAndUnreachableSurvive) {
  // Barbell: bridge edges are cut edges (replacement = inf). Plus an
  // isolated component for unreachable targets.
  const Graph barbell = gen::barbell(5, 4);
  const MsrpResult res = solve_msrp(barbell, {0});
  std::stringstream ss;
  Snapshot::capture(res).write(ss);
  const Snapshot snap = Snapshot::read(ss);
  for (Vertex t = 0; t < barbell.num_vertices(); ++t) {
    for (EdgeId e = 0; e < barbell.num_edges(); ++e) {
      EXPECT_EQ(snap.avoiding(0, t, e), res.avoiding(0, t, e));
    }
  }

  Graph split(6, {{0, 1}, {1, 2}, {4, 5}});
  const MsrpResult res2 = solve_msrp(split, {0});
  std::stringstream ss2;
  Snapshot::capture(res2).write(ss2);
  const Snapshot snap2 = Snapshot::read(ss2);
  EXPECT_EQ(snap2.shortest(0, 4), kInfDist);
  EXPECT_TRUE(snap2.row(0, 4).empty());
  EXPECT_EQ(snap2.avoiding(0, 4, 0), kInfDist);
}

TEST(Snapshot, FileRoundTrip) {
  Rng rng(3);
  const Graph g = gen::connected_gnp(30, 0.15, rng);
  const MsrpResult res = solve_msrp(g, {0, 15});
  const Snapshot snap = Snapshot::capture(res);

  const std::string path = testing::TempDir() + "/msrp_snapshot_test.bin";
  snap.save(path);
  const Snapshot loaded = Snapshot::load(path);
  EXPECT_EQ(loaded.content_digest(), snap.content_digest());
  EXPECT_GT(loaded.encoded_size(), 0u);
  std::remove(path.c_str());
}

TEST(Snapshot, CorruptionIsDetected) {
  const Graph g = gen::cycle(8);
  const MsrpResult res = solve_msrp(g, {0});
  std::stringstream ss;
  Snapshot::capture(res).write(ss);
  std::string image = ss.str();

  {
    std::stringstream truncated(image.substr(0, image.size() / 2));
    EXPECT_THROW(Snapshot::read(truncated), std::invalid_argument);
  }
  {
    std::string flipped = image;
    flipped[flipped.size() / 2] ^= 0x40;  // body byte -> checksum mismatch
    std::stringstream in(flipped);
    EXPECT_THROW(Snapshot::read(in), std::invalid_argument);
  }
  {
    std::string bad_magic = image;
    bad_magic[0] = 'X';
    std::stringstream in(bad_magic);
    EXPECT_THROW(Snapshot::read(in), std::invalid_argument);
  }
}

TEST(Snapshot, FormatsAgreeAndV2ServesFromTheMapping) {
  Rng rng(13);
  const Graph g = gen::connected_gnp(50, 0.1, rng);
  const std::vector<Vertex> sources{0, 25, 49};
  const MsrpResult res = solve_msrp(g, sources);
  const Snapshot snap = Snapshot::capture(res);

  const std::string v1_path = testing::TempDir() + "/msrp_fmt_test.v1.snap";
  const std::string v2_path = testing::TempDir() + "/msrp_fmt_test.v2.snap";
  snap.save(v1_path, service::SnapshotFormat::kV1);
  snap.save(v2_path, service::SnapshotFormat::kV2);

  const Snapshot v1 = Snapshot::load(v1_path);
  const Snapshot v2 = Snapshot::load(v2_path);
  const Snapshot v2m = Snapshot::load(v2_path, {.use_mmap = true, .verify_cells = false});
  EXPECT_FALSE(v1.is_mapped());
  EXPECT_FALSE(v2.is_mapped());
  EXPECT_TRUE(v2m.is_mapped());
  EXPECT_EQ(v1.content_digest(), snap.content_digest());
  EXPECT_EQ(v2.content_digest(), snap.content_digest());
  EXPECT_EQ(v2m.content_digest(), snap.content_digest());

  for (const Vertex s : sources) {
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        const Dist want = res.avoiding(s, t, e);
        ASSERT_EQ(v1.avoiding(s, t, e), want) << "s=" << s << " t=" << t << " e=" << e;
        ASSERT_EQ(v2.avoiding(s, t, e), want) << "s=" << s << " t=" << t << " e=" << e;
        ASSERT_EQ(v2m.avoiding(s, t, e), want) << "s=" << s << " t=" << t << " e=" << e;
      }
    }
  }
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
}

TEST(Snapshot, NonSourceAndOutOfRangeThrow) {
  const Graph g = gen::cycle(6);
  const MsrpResult res = solve_msrp(g, {0});
  const Snapshot snap = Snapshot::capture(res);
  EXPECT_THROW(snap.shortest(1, 2), std::invalid_argument);
  EXPECT_THROW(snap.avoiding(0, 99, 0), std::invalid_argument);
  EXPECT_THROW(snap.avoiding(0, 2, 99), std::invalid_argument);
}

// ------------------------------------------------------------ thread pool ---

TEST(ThreadPool, RunsEveryTask) {
  service::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, PropagatesTaskException) {
  service::ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // Pool stays usable afterwards.
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, SubmitTaskDeliversValuesAndExceptionsThroughTheFuture) {
  service::ThreadPool pool(2);
  std::future<int> value = pool.submit_task([] { return 6 * 7; });
  EXPECT_EQ(value.get(), 42);

  std::future<int> error =
      pool.submit_task([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(error.get(), std::runtime_error);
  // The exception travelled through the future, not the wait_idle channel.
  EXPECT_NO_THROW(pool.wait_idle());

  // Futures compose with fire-and-forget tasks on the same pool.
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  std::future<std::string> tail = pool.submit_task([] { return std::string("done"); });
  EXPECT_EQ(tail.get(), "done");
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

// ---------------------------------------------------------- query service ---

TEST(QueryService, ConcurrentBatchMatchesBruteForceOracle) {
  Rng rng(21);
  const Graph g = gen::connected_gnp(80, 0.07, rng);
  const std::vector<Vertex> sources{0, 5, 9, 17};

  service::QueryService svc({.threads = 4, .cache_capacity = 2, .min_parallel_batch = 1});
  const auto oracle = svc.build(g, sources);

  // Every (s, t, e) triple: sigma * n * m queries, answered on 4 threads.
  std::vector<Query> batch;
  for (const Vertex s : sources) {
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      for (EdgeId e = 0; e < g.num_edges(); ++e) batch.push_back({s, t, e});
    }
  }
  const std::vector<Dist> got = svc.query_batch(*oracle, batch);
  ASSERT_EQ(got.size(), batch.size());

  std::size_t i = 0;
  for (const Vertex s : sources) {
    const RpOracle truth(g, s);
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      for (EdgeId e = 0; e < g.num_edges(); ++e, ++i) {
        ASSERT_EQ(got[i], truth.distance_avoiding(t, e))
            << "s=" << s << " t=" << t << " e=" << e;
      }
    }
  }
  EXPECT_EQ(svc.queries_served(), batch.size());
}

TEST(QueryService, BatchAnswersMatchSerialAvoiding) {
  Rng rng(5);
  const Graph g = gen::connected_avg_degree(120, 5.0, rng);
  const std::vector<Vertex> sources{2, 60, 90};
  const MsrpResult res = solve_msrp(g, sources);

  service::QueryService svc({.threads = 4, .min_parallel_batch = 1});
  const auto oracle = svc.build(g, sources);

  Rng qrng(77);
  std::vector<Query> batch;
  for (int i = 0; i < 20000; ++i) {
    batch.push_back({sources[qrng.next_below(sources.size())],
                     static_cast<Vertex>(qrng.next_below(g.num_vertices())),
                     static_cast<EdgeId>(qrng.next_below(g.num_edges()))});
  }
  const std::vector<Dist> got = svc.query_batch(*oracle, batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(got[i], res.avoiding(batch[i].s, batch[i].t, batch[i].e)) << "i=" << i;
  }
}

TEST(QueryService, ConcurrentCallersShareThePool) {
  Rng rng(31);
  const Graph g = gen::connected_gnp(60, 0.1, rng);
  const std::vector<Vertex> sources{0, 30};
  const MsrpResult res = solve_msrp(g, sources);

  service::QueryService svc({.threads = 4, .min_parallel_batch = 1});
  const auto oracle = svc.build(g, sources);

  Rng qrng(13);
  std::vector<Query> batch;
  for (int i = 0; i < 5000; ++i) {
    batch.push_back({sources[qrng.next_below(2)],
                     static_cast<Vertex>(qrng.next_below(g.num_vertices())),
                     static_cast<EdgeId>(qrng.next_below(g.num_edges()))});
  }
  std::vector<Dist> want(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    want[i] = res.avoiding(batch[i].s, batch[i].t, batch[i].e);
  }

  // Several caller threads hammer the same service; every batch must come
  // back complete and correct.
  constexpr int kCallers = 4, kRounds = 10;
  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        const std::vector<Dist> got = svc.query_batch(*oracle, batch);
        if (got != want) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : callers) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(svc.queries_served(), batch.size() * kCallers * kRounds);
}

TEST(QueryService, RejectsInvalidQueries) {
  const Graph g = gen::cycle(10);
  service::QueryService svc({.threads = 2});
  const auto oracle = svc.build(g, {0});
  EXPECT_THROW(svc.query_batch(*oracle, std::vector<Query>{{1, 2, 0}}),
               std::invalid_argument);  // not a source
  EXPECT_THROW(svc.query_batch(*oracle, std::vector<Query>{{0, 99, 0}}),
               std::invalid_argument);  // target out of range
  EXPECT_THROW(svc.query_batch(*oracle, std::vector<Query>{{0, 2, 99}}),
               std::invalid_argument);  // edge out of range
}

TEST(QueryService, RepeatBuildHitsCache) {
  Rng rng(9);
  const Graph g = gen::connected_gnp(40, 0.1, rng);
  service::QueryService svc({.threads = 1});
  const auto first = svc.build(g, {0, 20});
  const auto second = svc.build(g, {0, 20});
  EXPECT_EQ(first.get(), second.get());  // same oracle object, no re-solve
  EXPECT_EQ(svc.cache().hits(), 1u);

  // Different sources or config -> different oracle.
  const auto third = svc.build(g, {0, 21});
  EXPECT_NE(first.get(), third.get());
  Config exact;
  exact.exact = true;
  const auto fourth = svc.build(g, {0, 20}, exact);
  EXPECT_NE(first.get(), fourth.get());
}

// --------------------------------------------------------------- async API ---

TEST(QueryService, AsyncBatchMatchesSync) {
  Rng rng(61);
  const Graph g = gen::connected_avg_degree(100, 5.0, rng);
  const std::vector<Vertex> sources{0, 40, 80};
  service::QueryService svc({.threads = 4, .min_parallel_batch = 1});
  const auto oracle = svc.build(g, sources);

  Rng qrng(62);
  std::vector<Query> batch;
  for (int i = 0; i < 20000; ++i) {
    batch.push_back({sources[qrng.next_below(sources.size())],
                     static_cast<Vertex>(qrng.next_below(g.num_vertices())),
                     static_cast<EdgeId>(qrng.next_below(g.num_edges()))});
  }
  const std::vector<Dist> want = svc.query_batch(*oracle, batch);

  service::BatchResult res = svc.submit_batch(oracle, batch).get();
  EXPECT_EQ(res.error, nullptr);
  EXPECT_EQ(res.oracle.get(), oracle.get());
  EXPECT_EQ(res.answers, want);
}

TEST(QueryService, AsyncColdCacheSubmitReturnsBeforeTheBuildFinishes) {
  Rng rng(63);
  const Graph g = gen::connected_avg_degree(500, 8.0, rng);
  const std::vector<Vertex> sources{1, 100, 200, 300};
  service::QueryService svc({.threads = 2});

  std::vector<Query> queries{{1, 5, 0}, {100, 499, 3}};
  auto fut = svc.submit_batch(g, sources, Config{}, queries);
  // The solve runs on the pool; the future cannot be ready the instant the
  // submit call returns (the build takes orders of magnitude longer than
  // the enqueue).
  EXPECT_EQ(fut.wait_for(std::chrono::milliseconds(0)), std::future_status::timeout);

  service::BatchResult res = fut.get();
  ASSERT_EQ(res.answers.size(), queries.size());
  ASSERT_NE(res.oracle, nullptr);
  // The async build landed in the cache: a sync build of the same instance
  // is now a hit and must agree.
  const auto oracle = svc.build(g, sources);
  EXPECT_EQ(oracle.get(), res.oracle.get());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(res.answers[i], oracle->avoiding(queries[i].s, queries[i].t, queries[i].e));
  }
}

TEST(QueryService, AsyncCallbackDeliversOnAPoolThread) {
  Rng rng(64);
  const Graph g = gen::connected_gnp(40, 0.15, rng);
  const std::vector<Vertex> sources{0, 20};
  service::QueryService svc({.threads = 2, .min_parallel_batch = 1});
  const auto oracle = svc.build(g, sources);

  std::vector<Query> batch;
  for (Vertex t = 0; t < g.num_vertices(); ++t) batch.push_back({0, t, 0});
  const std::vector<Dist> want = svc.query_batch(*oracle, batch);

  std::promise<service::BatchResult> delivered;
  svc.submit_batch(oracle, batch, [&delivered](service::BatchResult r) {
    delivered.set_value(std::move(r));
  });
  service::BatchResult res = delivered.get_future().get();
  EXPECT_EQ(res.error, nullptr);
  EXPECT_EQ(res.answers, want);
}

TEST(QueryService, AsyncValidationErrorsSurfaceThroughBothChannels) {
  const Graph g = gen::cycle(10);
  service::QueryService svc({.threads = 2});
  const auto oracle = svc.build(g, {0});

  // Future flavour: get() rethrows.
  auto fut = svc.submit_batch(oracle, std::vector<Query>{{1, 2, 0}});  // not a source
  EXPECT_THROW(fut.get(), std::invalid_argument);

  // Callback flavour: error lands in BatchResult::error.
  std::promise<service::BatchResult> delivered;
  svc.submit_batch(oracle, std::vector<Query>{{0, 99, 0}},  // target out of range
                   [&delivered](service::BatchResult r) { delivered.set_value(std::move(r)); });
  service::BatchResult res = delivered.get_future().get();
  ASSERT_NE(res.error, nullptr);
  EXPECT_TRUE(res.answers.empty());
  EXPECT_THROW(std::rethrow_exception(res.error), std::invalid_argument);
}

TEST(QueryService, StressConcurrentAsyncSubmitsRacingCacheEviction) {
  // Three distinct instances thrash a capacity-1 cache while six caller
  // threads submit async builds concurrently: every answer must still be
  // exact, every future must complete, and (under TSan) the pool, cache,
  // and completion paths must be race-free.
  constexpr int kInstances = 3, kCallers = 6, kRounds = 5;
  std::vector<Graph> graphs;
  std::vector<std::vector<Vertex>> sources;
  std::vector<MsrpResult> truths;
  // MsrpResult keeps a pointer to the graph it was solved on; reserve so
  // the push_backs below never reallocate the graphs out from under it.
  graphs.reserve(kInstances);
  truths.reserve(kInstances);
  for (int i = 0; i < kInstances; ++i) {
    Rng rng(70 + i);
    graphs.push_back(gen::connected_gnp(40 + 5 * i, 0.12, rng));
    sources.push_back({0, static_cast<Vertex>(10 + i), static_cast<Vertex>(30 + i)});
    truths.push_back(solve_msrp(graphs.back(), sources.back()));
  }

  service::QueryService svc(
      {.threads = 4, .cache_capacity = 1, .min_parallel_batch = 16});
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      Rng rng(900 + c);
      for (int r = 0; r < kRounds; ++r) {
        const int i = static_cast<int>(rng.next_below(kInstances));
        const Graph& g = graphs[i];
        std::vector<Query> batch;
        for (int q = 0; q < 400; ++q) {
          batch.push_back({sources[i][rng.next_below(sources[i].size())],
                           static_cast<Vertex>(rng.next_below(g.num_vertices())),
                           static_cast<EdgeId>(rng.next_below(g.num_edges()))});
        }
        service::BatchResult res = svc.submit_batch(g, sources[i], Config{}, batch).get();
        if (res.error != nullptr || res.answers.size() != batch.size()) {
          failures.fetch_add(1);
          continue;
        }
        for (std::size_t q = 0; q < batch.size(); ++q) {
          if (res.answers[q] != truths[i].avoiding(batch[q].s, batch[q].t, batch[q].e)) {
            failures.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& th : callers) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(svc.cache().pending_builds(), 0u);
}

// ------------------------------------------------------------ oracle cache ---

std::shared_ptr<const Snapshot> tiny_oracle(Vertex n) {
  const Graph g = gen::cycle(n);
  return std::make_shared<const Snapshot>(Snapshot::capture(solve_msrp(g, {0})));
}

TEST(OracleCache, EvictsLeastRecentlyUsed) {
  service::OracleCache cache(2);
  const OracleKey a{1, {0}, 0}, b{2, {0}, 0}, c{3, {0}, 0};
  cache.insert(a, tiny_oracle(4));
  cache.insert(b, tiny_oracle(5));
  EXPECT_EQ(cache.size(), 2u);

  EXPECT_NE(cache.find(a), nullptr);  // touch a: b becomes LRU
  cache.insert(c, tiny_oracle(6));    // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.find(b), nullptr);
  EXPECT_NE(cache.find(a), nullptr);
  EXPECT_NE(cache.find(c), nullptr);
}

TEST(OracleCache, ByteBudgetEvictsSeveralSmallOraclesForOneLarge) {
  // Budget sized to hold four small oracles (4s < s + L since L > 3s) but
  // not four plus the large one: inserting the large one must evict small
  // entries in LRU order until the sum fits, even though the entry-count
  // cap alone would keep them all.
  const auto small = tiny_oracle(6);
  const auto large = tiny_oracle(200);
  ASSERT_GT(large->footprint_bytes(), 3 * small->footprint_bytes());

  service::OracleCache cache(
      /*capacity=*/16,
      /*max_bytes=*/small->footprint_bytes() + large->footprint_bytes());
  const OracleKey k1{1, {0}, 0}, k2{2, {0}, 0}, k3{3, {0}, 0}, k4{4, {0}, 0};
  cache.insert(k1, tiny_oracle(6));
  cache.insert(k2, tiny_oracle(6));
  cache.insert(k3, tiny_oracle(6));
  cache.insert(k4, tiny_oracle(6));
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.evictions(), 0u);  // four small ones fit together

  cache.insert(OracleKey{5, {0}, 0}, large);
  EXPECT_LE(cache.size_bytes(), cache.max_bytes());
  EXPECT_NE(cache.find(OracleKey{5, {0}, 0}), nullptr);  // newest survives
  EXPECT_GE(cache.evictions(), 3u);  // several small entries had to go
  EXPECT_EQ(cache.find(k1), nullptr);  // LRU evicted first
}

TEST(OracleCache, SingleOracleOverBudgetStillServes) {
  const auto large = tiny_oracle(64);
  service::OracleCache cache(/*capacity=*/4, /*max_bytes=*/1);  // absurdly tight
  const OracleKey key{9, {0}, 0};
  cache.insert(key, large);
  EXPECT_EQ(cache.size(), 1u);  // never evict the entry just inserted
  EXPECT_NE(cache.find(key), nullptr);
  cache.insert(OracleKey{10, {0}, 0}, tiny_oracle(32));
  EXPECT_EQ(cache.size(), 1u);  // the older one is evicted to chase the budget
  EXPECT_EQ(cache.find(key), nullptr);
}

TEST(OracleCache, TtlExpiresEntriesOnTheInjectedClock) {
  using namespace std::chrono_literals;
  service::OracleCache cache(4, 0, /*entry_ttl=*/1000ms);
  auto now = std::chrono::steady_clock::time_point{};  // fake time
  cache.set_clock_for_testing([&now] { return now; });

  const OracleKey key{1, {0}, 0};
  int builds = 0;
  auto builder = [&builds] {
    ++builds;
    return tiny_oracle(4);
  };

  const auto first = cache.get_or_build(key, builder);
  EXPECT_EQ(builds, 1);
  now += 999ms;  // just inside the TTL: still a hit
  EXPECT_EQ(cache.get_or_build(key, builder).get(), first.get());
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(cache.expirations(), 0u);

  now += 1ms;  // exactly at the TTL: expired, refreshed through get_or_build
  const auto refreshed = cache.get_or_build(key, builder);
  EXPECT_EQ(builds, 2);
  EXPECT_NE(refreshed.get(), first.get());
  EXPECT_EQ(cache.expirations(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  // The pre-refresh holder keeps serving its own copy untouched.
  EXPECT_EQ(first->num_vertices(), 4u);
}

TEST(OracleCache, TtlRefreshIsSingleFlightedAcrossThreads) {
  using namespace std::chrono_literals;
  service::OracleCache cache(4, 0, /*entry_ttl=*/10ms);
  std::atomic<std::int64_t> now_ms{0};
  cache.set_clock_for_testing([&now_ms] {
    return std::chrono::steady_clock::time_point{} +
           std::chrono::milliseconds(now_ms.load());
  });

  const OracleKey key{2, {0}, 0};
  std::atomic<int> builds{0};
  auto builder = [&builds] {
    builds.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return tiny_oracle(5);
  };
  (void)cache.get_or_build(key, builder);
  ASSERT_EQ(builds.load(), 1);

  now_ms.store(1000);  // stale for everyone at once
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] { (void)cache.get_or_build(key, builder); });
  }
  for (auto& t : threads) t.join();
  // One expiration noticed, one refresh build shared by all six threads.
  EXPECT_EQ(builds.load(), 2);
  EXPECT_EQ(cache.expirations(), 1u);
}

TEST(OracleCache, ZeroTtlNeverExpires) {
  service::OracleCache cache(4);  // default: no TTL
  auto now = std::chrono::steady_clock::time_point{};
  cache.set_clock_for_testing([&now] { return now; });
  const OracleKey key{3, {0}, 0};
  cache.insert(key, tiny_oracle(4));
  now += std::chrono::hours(10000);
  EXPECT_NE(cache.find(key), nullptr);
  EXPECT_EQ(cache.expirations(), 0u);
}

TEST(QueryService, CacheTtlOptionReachesTheCache) {
  using namespace std::chrono_literals;
  service::QueryService svc({.threads = 1, .cache_entry_ttl = 250ms});
  EXPECT_EQ(svc.cache().entry_ttl(), 250ms);
}

TEST(OracleCache, GetOrBuildBuildsOnce) {
  service::OracleCache cache(2);
  const OracleKey key{42, {0}, 7};
  int builds = 0;
  auto builder = [&builds] {
    ++builds;
    return tiny_oracle(4);
  };
  const auto first = cache.get_or_build(key, builder);
  const auto second = cache.get_or_build(key, builder);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(OracleCache, ConcurrentGetOrBuildSingleFlights) {
  service::OracleCache cache(2);
  const OracleKey key{77, {0}, 1};
  std::atomic<int> builds{0};
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const Snapshot>> got(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      got[i] = cache.get_or_build(key, [&] {
        builds.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return tiny_oracle(5);
      });
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(builds.load(), 1) << "concurrent misses must share one build";
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(got[i].get(), got[0].get());
  EXPECT_EQ(cache.pending_builds(), 0u);
}

TEST(OracleCache, EvictionRacingInFlightBuildKeepsPendingOracle) {
  service::OracleCache cache(1);
  const OracleKey slow_key{10, {0}, 0};
  std::promise<void> build_started;
  std::promise<void> release_build;
  std::shared_future<void> release = release_build.get_future().share();

  std::thread builder([&] {
    auto oracle = cache.get_or_build(slow_key, [&] {
      build_started.set_value();
      release.wait();  // hold the build in flight
      return tiny_oracle(6);
    });
    ASSERT_NE(oracle, nullptr);
    EXPECT_EQ(oracle->num_vertices(), 6u);
  });
  build_started.get_future().wait();
  EXPECT_EQ(cache.pending_builds(), 1u);

  // Churn the capacity-1 cache while the build is in flight: the pending
  // slot must survive the evictions.
  cache.insert(OracleKey{11, {0}, 0}, tiny_oracle(4));
  cache.insert(OracleKey{12, {0}, 0}, tiny_oracle(5));
  EXPECT_GE(cache.evictions(), 1u);

  // A second caller for the same key parks on the single-flight slot and
  // must receive the original build, not run its own.
  std::thread waiter([&] {
    auto oracle = cache.get_or_build(slow_key, [&]() -> std::shared_ptr<const Snapshot> {
      ADD_FAILURE() << "waiter must not rebuild a key that is in flight";
      return tiny_oracle(6);
    });
    ASSERT_NE(oracle, nullptr);
    EXPECT_EQ(oracle->num_vertices(), 6u);
  });

  release_build.set_value();
  builder.join();
  waiter.join();
  EXPECT_EQ(cache.pending_builds(), 0u);
}

TEST(OracleCache, FailedBuildPropagatesAndAllowsRetry) {
  service::OracleCache cache(2);
  const OracleKey key{55, {0}, 3};
  EXPECT_THROW(cache.get_or_build(key,
                                  []() -> std::shared_ptr<const Snapshot> {
                                    throw std::runtime_error("solve failed");
                                  }),
               std::runtime_error);
  EXPECT_EQ(cache.pending_builds(), 0u);
  // The failed slot was released: a retry builds fresh and succeeds.
  auto ok = cache.get_or_build(key, [] { return tiny_oracle(4); });
  EXPECT_NE(ok, nullptr);
}

TEST(OracleCache, EvictedOracleStaysAliveForHolders) {
  service::OracleCache cache(1);
  const OracleKey a{1, {0}, 0}, b{2, {0}, 0};
  auto held = tiny_oracle(4);
  cache.insert(a, held);
  cache.insert(b, tiny_oracle(5));  // evicts a
  EXPECT_EQ(cache.find(a), nullptr);
  // The shared_ptr we kept still answers queries.
  EXPECT_EQ(held->shortest(0, 2), 2u);
}

// ------------------------------------------------------------ graph digest ---

TEST(GraphDigest, DistinguishesGraphsAndIsStable) {
  const Graph a(4, {{0, 1}, {1, 2}, {2, 3}});
  const Graph b(4, {{0, 1}, {1, 2}, {2, 3}});
  const Graph c(4, {{0, 1}, {1, 2}, {1, 3}});
  const Graph d(5, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(io::graph_digest(a), io::graph_digest(b));
  EXPECT_NE(io::graph_digest(a), io::graph_digest(c));
  EXPECT_NE(io::graph_digest(a), io::graph_digest(d));
}

}  // namespace
}  // namespace msrp
