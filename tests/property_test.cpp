// Property-based suites: invariants of replacement distances that must hold
// on every graph, checked over parameterized families of random instances.
#include <gtest/gtest.h>

#include "baseline/baselines.hpp"
#include "core/msrp.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace msrp {
namespace {

struct Instance {
  Graph g;
  std::vector<Vertex> sources;
};

Instance random_instance(std::uint64_t seed, Vertex n, double p, std::uint32_t sigma) {
  Rng rng(seed);
  Graph g = gen::connected_gnp(n, p, rng);
  const auto picks = rng.sample_without_replacement(n, sigma);
  return {std::move(g), {picks.begin(), picks.end()}};
}

class PropertySeedTest : public testing::TestWithParam<int> {};

// P1 — a replacement distance is never below the unconstrained distance,
// for ANY seed and configuration (soundness of the Monte Carlo algorithm).
TEST_P(PropertySeedTest, ReplacementNeverBeatsShortest) {
  auto [g, sources] = random_instance(100 + GetParam(), 64, 0.08, 3);
  Config cfg;
  cfg.seed = GetParam();
  cfg.oversample = 0.75;  // deliberately lean sampling
  const MsrpResult res = solve_msrp(g, sources, cfg);
  for (const Vertex s : sources) {
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      for (const Dist d : res.row(s, t)) EXPECT_GE(d, res.shortest(s, t));
    }
  }
}

// P2 — symmetry: d(s, t, e) == d(t, s, e) in an undirected graph.
TEST_P(PropertySeedTest, ReplacementDistanceIsSymmetric) {
  auto [g, sources] = random_instance(200 + GetParam(), 40, 0.12, 2);
  const MsrpResult want = solve_msrp_brute_force(g, sources);
  const Vertex a = sources[0], b = sources[1];
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(want.avoiding(a, b, e), want.avoiding(b, a, e)) << "e=" << e;
  }
}

// P3 — parity: in a bipartite graph every s-t walk has the same parity, so
// replacement distances keep the parity of d(s, t) (or are infinite).
TEST_P(PropertySeedTest, BipartiteParityPreserved) {
  const Graph g = gen::grid(5 + GetParam() % 3, 7);
  const std::vector<Vertex> sources{0};
  const MsrpResult res = solve_msrp_brute_force(g, sources);
  for (Vertex t = 0; t < g.num_vertices(); ++t) {
    const Dist d = res.shortest(0, t);
    for (const Dist rd : res.row(0, t)) {
      if (rd != kInfDist) {
        EXPECT_EQ(rd % 2, d % 2) << "t=" << t;
      }
    }
  }
}

// P4 — monotonicity: adding an edge can only lower replacement distances.
TEST_P(PropertySeedTest, AddingEdgesOnlyHelps) {
  Rng rng(300 + GetParam());
  const Graph g = gen::connected_gnp(36, 0.1, rng);
  // Add one absent edge.
  Vertex u = 0, v = 0;
  do {
    u = static_cast<Vertex>(rng.next_below(36));
    v = static_cast<Vertex>(rng.next_below(36));
  } while (u == v || g.has_edge(u, v));
  GraphBuilder gb(36);
  std::vector<std::pair<Vertex, Vertex>> edges = g.edges();
  edges.emplace_back(u, v);
  const Graph g2(36, edges);

  const std::vector<Vertex> sources{0, 18};
  const MsrpResult before = solve_msrp_brute_force(g, sources);
  const MsrpResult after = solve_msrp_brute_force(g2, sources);
  for (const Vertex s : sources) {
    for (Vertex t = 0; t < 36u; ++t) {
      // Compare edge-by-edge of the ORIGINAL graph; ids are a prefix of g2's.
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        EXPECT_LE(after.avoiding(s, t, e), before.avoiding(s, t, e))
            << "s=" << s << " t=" << t << " e=" << e;
      }
    }
  }
}

// P5 — triangle inequality through a common source under the same failure.
TEST_P(PropertySeedTest, TriangleInequalityUnderFailure) {
  auto [g, sources] = random_instance(400 + GetParam(), 32, 0.15, 3);
  const MsrpResult want = solve_msrp_brute_force(g, sources);
  const Vertex a = sources[0], b = sources[1], c = sources[2];
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Dist ab = want.avoiding(a, b, e);
    const Dist bc = want.avoiding(b, c, e);
    const Dist ac = want.avoiding(a, c, e);
    EXPECT_LE(ac, sat_add(ab, bc)) << "e=" << e;
  }
}

// P6 — bridges are exactly the edges with infinite replacement distance
// between their two sides.
TEST_P(PropertySeedTest, BridgesAreExactlyTheInfiniteFailures) {
  Rng rng(500 + GetParam());
  const Graph g = gen::path_with_chords(48, 8, rng);
  const std::vector<EdgeId> bridge_list = bridges(g);
  std::vector<bool> is_bridge(g.num_edges(), false);
  for (const EdgeId e : bridge_list) is_bridge[e] = true;

  const Vertex s = 0;
  const MsrpResult res = solve_msrp_brute_force(g, {s});
  const BfsTree& ts = res.tree(s);
  for (Vertex t = 0; t < g.num_vertices(); ++t) {
    std::uint32_t pos = 0;
    for (const EdgeId e : ts.path_edges(t)) {
      const bool inf = res.row(s, t)[pos] == kInfDist;
      // An on-path bridge separates s from t iff t is beyond it — and every
      // on-path bridge IS beyond-separating for this t (the path crosses it).
      EXPECT_EQ(inf, is_bridge[e]) << "t=" << t << " e=" << e;
      ++pos;
    }
  }
}

// P7 — the solver's row values agree with literally deleting the edge and
// re-running BFS (the definitional check), on lean sampling upper bounds.
TEST_P(PropertySeedTest, UpperBoundsMatchSomeRealPath) {
  auto [g, sources] = random_instance(600 + GetParam(), 48, 0.1, 2);
  Config cfg;
  cfg.seed = 77 + GetParam();
  const MsrpResult res = solve_msrp(g, sources, cfg);
  for (const Vertex s : sources) {
    const BfsTree& ts = res.tree(s);
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      std::uint32_t pos = 0;
      for (const EdgeId e : ts.path_edges(t)) {
        const Dist claimed = res.row(s, t)[pos++];
        if (claimed == kInfDist) continue;
        // Any finite claim must be realizable in G - e.
        const BfsTree avoid(g, s, e);
        EXPECT_LE(avoid.dist(t), claimed) << "claim below is impossible";
        EXPECT_GE(claimed, avoid.dist(t));  // == soundness direction
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySeedTest, testing::Range(0, 6));

// --------------------------------------------------- failure injection

TEST(FailureInjection, TwoEdgeConnectedGraphsAlwaysRecover) {
  // On a 2-edge-connected graph no single failure disconnects anything:
  // every replacement distance must be finite.
  const Graph g = gen::grid(6, 6);  // grids >= 2x2 are 2-edge-connected
  ASSERT_TRUE(bridges(g).empty());
  const std::vector<Vertex> sources{0, 35};
  const MsrpResult res = solve_msrp(g, sources);
  for (const Vertex s : sources) {
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      for (const Dist d : res.row(s, t)) EXPECT_NE(d, kInfDist);
    }
  }
}

TEST(FailureInjection, CascadingFailuresViaRebuild) {
  // Repeatedly fail the worst edge and rebuild: distances must be monotone
  // non-decreasing as the graph thins (a mini chaos test of the pipeline).
  Rng rng(9);
  Graph g = gen::connected_gnp(40, 0.2, rng);
  const Vertex s = 0, t = 39;
  Dist last = BfsTree(g, s).dist(t);
  for (int round = 0; round < 4; ++round) {
    const MsrpResult res = solve_msrp_brute_force(g, {s});
    const BfsTree& ts = res.tree(s);
    if (!ts.reachable(t) || ts.dist(t) == 0) break;
    // Fail the first path edge.
    const EdgeId worst = ts.path_edges(t).front();
    EXPECT_GE(res.avoiding(s, t, worst), last);
    last = res.avoiding(s, t, worst);
    if (last == kInfDist) break;
    // Rebuild the graph without that edge.
    std::vector<std::pair<Vertex, Vertex>> edges;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (e != worst) edges.push_back(g.endpoints(e));
    }
    g = Graph(40, edges);
    EXPECT_EQ(BfsTree(g, s).dist(t), last);  // rebuild agrees with avoidance
  }
}

}  // namespace
}  // namespace msrp
