// Differential fuzz harness for the serving stack.
//
// Every iteration draws a random instance (graph family, size, density,
// source count, solver seed), solves it, and then answers the same query
// batch through every serving path the service layer offers:
//
//   1. sync  — QueryService::query_batch against the built oracle
//   2. async — QueryService::submit_batch future against the same oracle
//   3. v1    — snapshot saved as format v1, reloaded via the varint decoder
//   4. v2    — snapshot saved as format v2, reloaded zero-copy through mmap
//   5. shm   — (MSRP_FUZZ_SHARDS=K > 0 only) a QueryService routing through
//              K forked worker processes over shared-memory snapshot
//              segments; off by default because the sanitizer jobs run this
//              suite and fork under TSan is unsupported
//
// All paths must agree bit-for-bit with the O(sigma n m) brute-force
// oracle. On any mismatch the failure message carries the iteration seed;
// rerun with MSRP_FUZZ_SEED=<seed> MSRP_FUZZ_GRAPHS=1 to reproduce exactly
// that instance. MSRP_FUZZ_GRAPHS raises the default 200-instance budget
// for soak runs.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "baseline/baselines.hpp"
#include "core/msrp.hpp"
#include "graph/generators.hpp"
#include "service/query_service.hpp"

namespace msrp {
namespace {

using service::Query;
using service::Snapshot;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  return raw != nullptr ? std::strtoull(raw, nullptr, 10) : fallback;
}

Graph random_instance(Rng& rng) {
  const Vertex n = static_cast<Vertex>(6 + rng.next_below(30));
  const double p = 0.05 + 0.4 * rng.next_double();
  switch (rng.next_below(5)) {
    case 0: return gen::erdos_renyi(n, p, rng);  // may be disconnected
    case 1: return gen::connected_gnp(n, p, rng);
    case 2: return gen::random_tree(n, rng);  // every tree edge is a cut edge
    case 3: return gen::path_with_chords(n, 1 + static_cast<std::uint32_t>(n / 4), rng);
    default: return gen::barbell(3 + static_cast<Vertex>(rng.next_below(4)),
                                 2 + static_cast<Vertex>(rng.next_below(4)));
  }
}

TEST(ServiceFuzz, AllServingPathsMatchBruteForce) {
  const std::uint64_t base_seed = env_u64("MSRP_FUZZ_SEED", 0xF0225EEDULL);
  const std::uint64_t num_graphs = env_u64("MSRP_FUZZ_GRAPHS", 200);
  const std::uint64_t shards = env_u64("MSRP_FUZZ_SHARDS", 0);
  const std::string dir = testing::TempDir();

  service::QueryService svc(
      {.threads = 4, .cache_capacity = 2, .min_parallel_batch = 64});
  std::unique_ptr<service::QueryService> sharded_svc;
  if (shards > 0) {
    service::QueryService::Options opts;
    opts.threads = 2;
    opts.cache_capacity = 2;
    opts.min_parallel_batch = 64;
    opts.shards = static_cast<unsigned>(shards);
    sharded_svc = std::make_unique<service::QueryService>(opts);
  }

  for (std::uint64_t iter = 0; iter < num_graphs; ++iter) {
    const std::uint64_t seed = base_seed + iter;
    SCOPED_TRACE("fuzz seed " + std::to_string(seed) +
                 " (rerun: MSRP_FUZZ_SEED=" + std::to_string(seed) +
                 " MSRP_FUZZ_GRAPHS=1)");
    Rng rng(seed);

    const Graph g = random_instance(rng);
    const Vertex n = g.num_vertices();
    const EdgeId m = g.num_edges();
    if (m == 0) continue;  // no edges -> no valid (s, t, e) queries

    const std::uint32_t sigma =
        1 + static_cast<std::uint32_t>(rng.next_below(std::min<Vertex>(4, n)));
    const auto picks = rng.sample_without_replacement(n, sigma);
    const std::vector<Vertex> sources(picks.begin(), picks.end());

    Config cfg;
    cfg.seed = rng.next_u64();
    cfg.exact = rng.next_bernoulli(0.25);
    // Randomize the build thread count. The service itself always builds on
    // its own pool (ignoring build_threads), so the direct solve below
    // cross-checks bit-identity between a build at this thread count and
    // the pool build — content digests cover trees and every row cell.
    cfg.build_threads = 1 + static_cast<unsigned>(rng.next_below(4));

    const MsrpResult truth = solve_msrp_brute_force(g, sources);
    const auto oracle = svc.build(g, sources, cfg);
    ASSERT_EQ(Snapshot::capture(solve_msrp(g, sources, cfg)).content_digest(),
              oracle->content_digest())
        << "threads=" << cfg.build_threads << " diverged from pool build, seed=" << seed;

    // Exhaustive queries when the instance is small, random sample otherwise.
    std::vector<Query> queries;
    const std::uint64_t universe = std::uint64_t{sigma} * n * m;
    if (universe <= 4096) {
      for (const Vertex s : sources) {
        for (Vertex t = 0; t < n; ++t) {
          for (EdgeId e = 0; e < m; ++e) queries.push_back({s, t, e});
        }
      }
    } else {
      for (int i = 0; i < 1500; ++i) {
        queries.push_back({sources[rng.next_below(sigma)],
                           static_cast<Vertex>(rng.next_below(n)),
                           static_cast<EdgeId>(rng.next_below(m))});
      }
    }
    std::vector<Dist> want(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      want[i] = truth.avoiding(queries[i].s, queries[i].t, queries[i].e);
    }

    // Path 1: sync batch.
    const std::vector<Dist> sync_got = svc.query_batch(*oracle, queries);
    ASSERT_EQ(sync_got, want) << "sync path diverged, seed=" << seed;

    // Path 2: async future against the same oracle handle.
    service::BatchResult async_res = svc.submit_batch(oracle, queries).get();
    ASSERT_EQ(async_res.error, nullptr) << "async path failed, seed=" << seed;
    ASSERT_EQ(async_res.answers, want) << "async path diverged, seed=" << seed;

    // Path 5 (opt-in): route the same batch through forked shard workers
    // over shared-memory segments.
    if (sharded_svc != nullptr) {
      ASSERT_EQ(sharded_svc->query_batch(*oracle, queries), want)
          << "sharded path diverged, seed=" << seed;
    }

    // Paths 3 + 4: the two on-disk formats, v2 through the mmap fast path.
    const std::string v1_path = dir + "/msrp_fuzz_" + std::to_string(seed) + ".v1.snap";
    const std::string v2_path = dir + "/msrp_fuzz_" + std::to_string(seed) + ".v2.snap";
    oracle->save(v1_path, service::SnapshotFormat::kV1);
    oracle->save(v2_path, service::SnapshotFormat::kV2);
    {
      const Snapshot v1 = Snapshot::load(v1_path);
      ASSERT_FALSE(v1.is_mapped());
      ASSERT_EQ(v1.content_digest(), oracle->content_digest()) << "seed=" << seed;
      ASSERT_EQ(svc.query_batch(v1, queries), want) << "v1 path diverged, seed=" << seed;

      const Snapshot v2 =
          Snapshot::load(v2_path, {.use_mmap = true, .verify_cells = true});
      ASSERT_EQ(v2.content_digest(), oracle->content_digest()) << "seed=" << seed;
      ASSERT_EQ(svc.query_batch(v2, queries), want) << "v2 mmap path diverged, seed=" << seed;
    }
    std::remove(v1_path.c_str());
    std::remove(v2_path.c_str());
  }
}

}  // namespace
}  // namespace msrp
