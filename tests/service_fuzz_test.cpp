// Differential fuzz harness for the serving stack.
//
// Every iteration draws a random instance (graph family, size, density,
// source count, solver seed), solves it, and then answers the same query
// batch through every serving path the service layer offers:
//
//   1. sync  — QueryService::query_batch against the built oracle
//   2. async — QueryService::submit_batch future against the same oracle
//   3. v1    — snapshot saved as format v1, reloaded via the varint decoder
//   4. v2    — snapshot saved as format v2, reloaded zero-copy through mmap
//   5. shm   — (MSRP_FUZZ_SHARDS=K > 0 only) a QueryService routing through
//              K forked worker processes over shared-memory snapshot
//              segments; off by default because the sanitizer jobs run this
//              suite and fork under TSan is unsupported
//
// All paths must agree bit-for-bit with the O(sigma n m) brute-force
// oracle. On any mismatch the failure message carries the iteration seed;
// rerun with MSRP_FUZZ_SEED=<seed> MSRP_FUZZ_GRAPHS=1 to reproduce exactly
// that instance. MSRP_FUZZ_GRAPHS raises the default 200-instance budget
// for soak runs.
//
// A second harness fuzzes the protocol v3 typed workloads (TOP_K_VITAL,
// VICKREY_PRICES, K_FAIL) the same way: independent referees derived from
// the brute-force oracle — and, for k-fail, a from-scratch BFS of G - F —
// checked against the sync, async, mmap-reload, and sharded serving paths.
// MSRP_FUZZ_WORKLOADS sets its instance budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "baseline/baselines.hpp"
#include "core/msrp.hpp"
#include "graph/generators.hpp"
#include "service/query_service.hpp"
#include "service/workloads.hpp"

namespace msrp {
namespace {

using service::Query;
using service::Snapshot;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  return raw != nullptr ? std::strtoull(raw, nullptr, 10) : fallback;
}

Graph random_instance(Rng& rng) {
  const Vertex n = static_cast<Vertex>(6 + rng.next_below(30));
  const double p = 0.05 + 0.4 * rng.next_double();
  switch (rng.next_below(5)) {
    case 0: return gen::erdos_renyi(n, p, rng);  // may be disconnected
    case 1: return gen::connected_gnp(n, p, rng);
    case 2: return gen::random_tree(n, rng);  // every tree edge is a cut edge
    case 3: return gen::path_with_chords(n, 1 + static_cast<std::uint32_t>(n / 4), rng);
    default: return gen::barbell(3 + static_cast<Vertex>(rng.next_below(4)),
                                 2 + static_cast<Vertex>(rng.next_below(4)));
  }
}

TEST(ServiceFuzz, AllServingPathsMatchBruteForce) {
  const std::uint64_t base_seed = env_u64("MSRP_FUZZ_SEED", 0xF0225EEDULL);
  const std::uint64_t num_graphs = env_u64("MSRP_FUZZ_GRAPHS", 200);
  const std::uint64_t shards = env_u64("MSRP_FUZZ_SHARDS", 0);
  const std::string dir = testing::TempDir();

  service::QueryService svc(
      {.threads = 4, .cache_capacity = 2, .min_parallel_batch = 64});
  std::unique_ptr<service::QueryService> sharded_svc;
  if (shards > 0) {
    service::QueryService::Options opts;
    opts.threads = 2;
    opts.cache_capacity = 2;
    opts.min_parallel_batch = 64;
    opts.shards = static_cast<unsigned>(shards);
    sharded_svc = std::make_unique<service::QueryService>(opts);
  }

  for (std::uint64_t iter = 0; iter < num_graphs; ++iter) {
    const std::uint64_t seed = base_seed + iter;
    SCOPED_TRACE("fuzz seed " + std::to_string(seed) +
                 " (rerun: MSRP_FUZZ_SEED=" + std::to_string(seed) +
                 " MSRP_FUZZ_GRAPHS=1)");
    Rng rng(seed);

    const Graph g = random_instance(rng);
    const Vertex n = g.num_vertices();
    const EdgeId m = g.num_edges();
    if (m == 0) continue;  // no edges -> no valid (s, t, e) queries

    const std::uint32_t sigma =
        1 + static_cast<std::uint32_t>(rng.next_below(std::min<Vertex>(4, n)));
    const auto picks = rng.sample_without_replacement(n, sigma);
    const std::vector<Vertex> sources(picks.begin(), picks.end());

    Config cfg;
    cfg.seed = rng.next_u64();
    cfg.exact = rng.next_bernoulli(0.25);
    // Randomize the build thread count. The service itself always builds on
    // its own pool (ignoring build_threads), so the direct solve below
    // cross-checks bit-identity between a build at this thread count and
    // the pool build — content digests cover trees and every row cell.
    cfg.build_threads = 1 + static_cast<unsigned>(rng.next_below(4));

    const MsrpResult truth = solve_msrp_brute_force(g, sources);
    const auto oracle = svc.build(g, sources, cfg);
    ASSERT_EQ(Snapshot::capture(solve_msrp(g, sources, cfg)).content_digest(),
              oracle->content_digest())
        << "threads=" << cfg.build_threads << " diverged from pool build, seed=" << seed;

    // Exhaustive queries when the instance is small, random sample otherwise.
    std::vector<Query> queries;
    const std::uint64_t universe = std::uint64_t{sigma} * n * m;
    if (universe <= 4096) {
      for (const Vertex s : sources) {
        for (Vertex t = 0; t < n; ++t) {
          for (EdgeId e = 0; e < m; ++e) queries.push_back({s, t, e});
        }
      }
    } else {
      for (int i = 0; i < 1500; ++i) {
        queries.push_back({sources[rng.next_below(sigma)],
                           static_cast<Vertex>(rng.next_below(n)),
                           static_cast<EdgeId>(rng.next_below(m))});
      }
    }
    std::vector<Dist> want(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      want[i] = truth.avoiding(queries[i].s, queries[i].t, queries[i].e);
    }

    // Path 1: sync batch.
    const std::vector<Dist> sync_got = svc.query_batch(*oracle, queries);
    ASSERT_EQ(sync_got, want) << "sync path diverged, seed=" << seed;

    // Path 2: async future against the same oracle handle.
    service::BatchResult async_res = svc.submit_batch(oracle, queries).get();
    ASSERT_EQ(async_res.error, nullptr) << "async path failed, seed=" << seed;
    ASSERT_EQ(async_res.answers, want) << "async path diverged, seed=" << seed;

    // Path 5 (opt-in): route the same batch through forked shard workers
    // over shared-memory segments.
    if (sharded_svc != nullptr) {
      ASSERT_EQ(sharded_svc->query_batch(*oracle, queries), want)
          << "sharded path diverged, seed=" << seed;
    }

    // Paths 3 + 4: the two on-disk formats, v2 through the mmap fast path.
    const std::string v1_path = dir + "/msrp_fuzz_" + std::to_string(seed) + ".v1.snap";
    const std::string v2_path = dir + "/msrp_fuzz_" + std::to_string(seed) + ".v2.snap";
    oracle->save(v1_path, service::SnapshotFormat::kV1);
    oracle->save(v2_path, service::SnapshotFormat::kV2);
    {
      const Snapshot v1 = Snapshot::load(v1_path);
      ASSERT_FALSE(v1.is_mapped());
      ASSERT_EQ(v1.content_digest(), oracle->content_digest()) << "seed=" << seed;
      ASSERT_EQ(svc.query_batch(v1, queries), want) << "v1 path diverged, seed=" << seed;

      const Snapshot v2 =
          Snapshot::load(v2_path, {.use_mmap = true, .verify_cells = true});
      ASSERT_EQ(v2.content_digest(), oracle->content_digest()) << "seed=" << seed;
      ASSERT_EQ(svc.query_batch(v2, queries), want) << "v2 mmap path diverged, seed=" << seed;
    }
    std::remove(v1_path.c_str());
    std::remove(v2_path.c_str());
  }
}

// ----- typed workload referees (protocol v3 opcodes) -----------------------
//
// Each referee is derived from the brute-force oracle (or, for k-fail, a
// plain BFS written here from scratch), never from the service's own
// assembly code — the point is that two independent derivations of "top-k
// vital", "Vickrey prices", and "d(s,t) in G - F" agree bit for bit.

service::VitalityResult referee_vitality(const MsrpResult& truth, Vertex s, Vertex t,
                                         std::uint32_t k) {
  service::VitalityResult out;
  out.base = truth.shortest(s, t);
  if (s == t || out.base == kInfDist) return out;
  const std::vector<EdgeId> path = truth.tree(s).path_edges(t);
  for (std::uint32_t i = 0; i < path.size(); ++i) {
    out.edges.push_back({path[i], i, truth.avoiding(s, t, path[i])});
  }
  // (vitality desc, position asc); base is constant over the path, so
  // ordering by the replacement distance is the same order (kInfDist — a
  // bridge — sorts largest).
  std::stable_sort(out.edges.begin(), out.edges.end(),
                   [](const service::VitalityEntry& a, const service::VitalityEntry& b) {
                     if (a.replacement != b.replacement) return a.replacement > b.replacement;
                     return a.position < b.position;
                   });
  if (out.edges.size() > k) out.edges.resize(k);
  return out;
}

service::VickreyResult referee_vickrey(const MsrpResult& truth, Vertex s, Vertex t) {
  service::VickreyResult out;
  out.base = truth.shortest(s, t);
  if (s == t || out.base == kInfDist) return out;
  for (const EdgeId e : truth.tree(s).path_edges(t)) {
    const Dist repl = truth.avoiding(s, t, e);
    out.prices.push_back({e, repl == kInfDist ? kInfDist : repl - out.base});
  }
  return out;
}

/// d(s, t) in G - fails by textbook BFS — independent of the ftsub
/// machinery, the oracle rows, and the canonical-tree code alike.
Dist referee_kfail(const Graph& g, Vertex s, Vertex t, std::span<const EdgeId> fails) {
  if (s == t) return 0;
  std::vector<Dist> dist(g.num_vertices(), kInfDist);
  std::vector<Vertex> queue{s};
  dist[s] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Vertex u = queue[head];
    for (const Arc& a : g.neighbors(u)) {
      if (std::find(fails.begin(), fails.end(), a.edge) != fails.end()) continue;
      if (dist[a.to] != kInfDist) continue;
      dist[a.to] = dist[u] + 1;
      if (a.to == t) return dist[a.to];
      queue.push_back(a.to);
    }
  }
  return dist[t];
}

// Differential fuzz for the three v3 workloads: every iteration answers the
// same typed batches through the in-process path, the async submit path,
// the v2 mmap reload in a *fresh* service (where |F| == 2 must demand an
// explicit attach_graph), and — with MSRP_FUZZ_SHARDS — the forked-shard
// path, all against the referees above. Rerun one instance with
// MSRP_FUZZ_SEED=<seed> MSRP_FUZZ_WORKLOADS=1.
TEST(ServiceFuzz, WorkloadOpcodesMatchBruteForce) {
  const std::uint64_t base_seed = env_u64("MSRP_FUZZ_SEED", 0x3B17A11DULL);
  const std::uint64_t num_graphs = env_u64("MSRP_FUZZ_WORKLOADS", 120);
  const std::uint64_t shards = env_u64("MSRP_FUZZ_SHARDS", 0);
  const std::string dir = testing::TempDir();

  service::QueryService svc(
      {.threads = 4, .cache_capacity = 2, .min_parallel_batch = 64});
  // A second service that never built anything: oracles arrive here only as
  // mmap-loaded snapshots, so it exercises the attach_graph contract.
  service::QueryService reload_svc(
      {.threads = 2, .cache_capacity = 2, .min_parallel_batch = 64});
  std::unique_ptr<service::QueryService> sharded_svc;
  if (shards > 0) {
    service::QueryService::Options opts;
    opts.threads = 2;
    opts.cache_capacity = 2;
    opts.min_parallel_batch = 64;
    opts.shards = static_cast<unsigned>(shards);
    sharded_svc = std::make_unique<service::QueryService>(opts);
  }

  for (std::uint64_t iter = 0; iter < num_graphs; ++iter) {
    const std::uint64_t seed = base_seed + iter;
    SCOPED_TRACE("workload fuzz seed " + std::to_string(seed) +
                 " (rerun: MSRP_FUZZ_SEED=" + std::to_string(seed) +
                 " MSRP_FUZZ_WORKLOADS=1)");
    Rng rng(seed);

    const Graph g = random_instance(rng);
    const Vertex n = g.num_vertices();
    const EdgeId m = g.num_edges();
    if (m == 0) continue;

    const std::uint32_t sigma =
        1 + static_cast<std::uint32_t>(rng.next_below(std::min<Vertex>(4, n)));
    const auto picks = rng.sample_without_replacement(n, sigma);
    const std::vector<Vertex> sources(picks.begin(), picks.end());

    Config cfg;
    cfg.seed = rng.next_u64();
    cfg.exact = rng.next_bernoulli(0.25);

    const MsrpResult truth = solve_msrp_brute_force(g, sources);
    const auto oracle = svc.build(g, sources, cfg);

    // One query of each kind per (source, target) pair — exhaustive over
    // the pair universe (sigma <= 4, n <= 35), randomized in k and F.
    std::vector<service::VitalityQuery> vq;
    std::vector<service::VitalityResult> vwant;
    std::vector<service::VickreyQuery> pq;
    std::vector<service::VickreyResult> pwant;
    std::vector<service::KFailQuery> fq;
    std::vector<Dist> fwant;
    bool has_two_fail = false;
    for (const Vertex s : sources) {
      for (Vertex t = 0; t < n; ++t) {
        const std::uint32_t k = 1 + static_cast<std::uint32_t>(rng.next_below(8));
        vq.push_back({s, t, k});
        vwant.push_back(referee_vitality(truth, s, t, k));
        pq.push_back({s, t});
        pwant.push_back(referee_vickrey(truth, s, t));

        service::KFailQuery f{s, t, {}};
        const std::size_t fk =
            std::min<std::size_t>(rng.next_below(service::kMaxKFailEdges + 1), m);
        while (f.fails.size() < fk) {
          const EdgeId e = static_cast<EdgeId>(rng.next_below(m));
          if (std::find(f.fails.begin(), f.fails.end(), e) == f.fails.end()) {
            f.fails.push_back(e);
          }
        }
        has_two_fail |= f.fails.size() == 2;
        fwant.push_back(referee_kfail(g, s, t, f.fails));
        fq.push_back(std::move(f));
      }
    }

    // |F| <= 1 answers must also equal the oracle row the point path would
    // serve — the two referees (BFS vs brute-force rows) cross-check here.
    for (std::size_t i = 0; i < fq.size(); ++i) {
      if (fq[i].fails.size() == 1) {
        ASSERT_EQ(fwant[i], truth.avoiding(fq[i].s, fq[i].t, fq[i].fails[0]))
            << "referees disagree, seed=" << seed;
      }
    }

    // Path 1: the sync typed entry points.
    ASSERT_EQ(svc.vitality_batch(*oracle, vq), vwant) << "vitality diverged, seed=" << seed;
    ASSERT_EQ(svc.vickrey_batch(*oracle, pq), pwant) << "vickrey diverged, seed=" << seed;
    ASSERT_EQ(svc.kfail_batch(*oracle, fq), fwant) << "kfail diverged, seed=" << seed;

    // Path 2: the async submit flavours (what the wire server drives).
    {
      std::promise<service::VitalityBatchResult> vp;
      svc.submit_vitality(oracle, vq, [&vp](service::VitalityBatchResult r) {
        vp.set_value(std::move(r));
      });
      const service::VitalityBatchResult vr = vp.get_future().get();
      ASSERT_EQ(vr.error, nullptr) << "async vitality failed, seed=" << seed;
      ASSERT_EQ(vr.results, vwant) << "async vitality diverged, seed=" << seed;

      std::promise<service::VickreyBatchResult> pp;
      svc.submit_vickrey(oracle, pq, [&pp](service::VickreyBatchResult r) {
        pp.set_value(std::move(r));
      });
      const service::VickreyBatchResult pr = pp.get_future().get();
      ASSERT_EQ(pr.error, nullptr) << "async vickrey failed, seed=" << seed;
      ASSERT_EQ(pr.results, pwant) << "async vickrey diverged, seed=" << seed;

      std::promise<service::BatchResult> fp;
      svc.submit_kfail(oracle, fq, [&fp](service::BatchResult r) {
        fp.set_value(std::move(r));
      });
      const service::BatchResult fr = fp.get_future().get();
      ASSERT_EQ(fr.error, nullptr) << "async kfail failed, seed=" << seed;
      ASSERT_EQ(fr.answers, fwant) << "async kfail diverged, seed=" << seed;
    }

    // Path 3 (opt-in): the forked shard workers. attach_graph supplies the
    // BFS graph the |F| == 2 queries need, exactly as a sharded embedder
    // would.
    if (sharded_svc != nullptr) {
      sharded_svc->attach_graph(oracle->content_digest(), std::make_shared<const Graph>(g));
      ASSERT_EQ(sharded_svc->vitality_batch(*oracle, vq), vwant)
          << "sharded vitality diverged, seed=" << seed;
      ASSERT_EQ(sharded_svc->vickrey_batch(*oracle, pq), pwant)
          << "sharded vickrey diverged, seed=" << seed;
      ASSERT_EQ(sharded_svc->kfail_batch(*oracle, fq), fwant)
          << "sharded kfail diverged, seed=" << seed;
    }

    // Path 4: v2 snapshot reloaded zero-copy into a service that never saw
    // the build. Vitality and Vickrey work from the mapping alone; a
    // two-edge failure set must first refuse (no graph behind the digest),
    // then answer identically once the graph is attached.
    const std::string v2_path =
        dir + "/msrp_wfuzz_" + std::to_string(seed) + ".v2.snap";
    oracle->save(v2_path, service::SnapshotFormat::kV2);
    {
      const Snapshot v2 = Snapshot::load(v2_path, {.use_mmap = true, .verify_cells = false});
      ASSERT_EQ(v2.content_digest(), oracle->content_digest()) << "seed=" << seed;
      ASSERT_EQ(reload_svc.vitality_batch(v2, vq), vwant)
          << "mmap vitality diverged, seed=" << seed;
      ASSERT_EQ(reload_svc.vickrey_batch(v2, pq), pwant)
          << "mmap vickrey diverged, seed=" << seed;
      if (has_two_fail) {
        EXPECT_THROW(reload_svc.kfail_batch(v2, fq), std::invalid_argument)
            << "unattached |F|==2 must refuse, seed=" << seed;
      }
      reload_svc.attach_graph(v2.content_digest(), std::make_shared<const Graph>(g));
      ASSERT_EQ(reload_svc.kfail_batch(v2, fq), fwant)
          << "mmap kfail diverged, seed=" << seed;
    }
    std::remove(v2_path.c_str());
  }
}

}  // namespace
}  // namespace msrp
