#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "rp/oracle.hpp"
#include "rp/single_pair.hpp"

namespace msrp {
namespace {

// ------------------------------------------------------------------ oracle

TEST(RpOracle, CycleReplacement) {
  const Graph g = gen::cycle(6);
  const RpOracle oracle(g, 0);
  // Canonical path 0->1->2->3 (or via 5; BFS from 0 visits neighbour 1 first).
  const auto row = oracle.replacement_row(3);
  ASSERT_EQ(row.size(), 3u);
  // Avoiding any edge of the 3-edge arc forces the other 3-edge arc.
  for (const Dist d : row) EXPECT_EQ(d, 3u);
}

TEST(RpOracle, BridgeHasNoReplacement) {
  const Graph g = gen::path(4);
  const RpOracle oracle(g, 0);
  const auto row = oracle.replacement_row(3);
  ASSERT_EQ(row.size(), 3u);
  for (const Dist d : row) EXPECT_EQ(d, kInfDist);
}

TEST(RpOracle, NonTreeEdgeLeavesDistanceUnchanged) {
  const Graph g = gen::cycle(4);
  const RpOracle oracle(g, 0);
  // Find the non-tree edge.
  const BfsTree t(g, 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!t.is_tree_edge(g, e)) {
      for (Vertex v = 0; v < 4; ++v) {
        EXPECT_EQ(oracle.distance_avoiding(v, e), t.dist(v));
      }
    }
  }
}

TEST(RpOracle, GridDetour) {
  const Graph g = gen::grid(2, 3);  // vertices 0..5, 0-1-2 / 3-4-5
  const RpOracle oracle(g, 0);
  const auto row = oracle.replacement_row(2);  // path 0-1-2
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], 4u);  // avoid (0,1): 0-3-4-5-2 or 0-3-4-1-2
  EXPECT_EQ(row[1], 4u);  // avoid (1,2): 0-1-4-5-2
}

// ------------------------------------------------- single-pair (MMG) vs oracle

class SinglePairParamTest
    : public testing::TestWithParam<std::tuple<int, double, std::uint64_t>> {};

TEST_P(SinglePairParamTest, MatchesOracleOnRandomGraphs) {
  const auto [n, p, seed] = GetParam();
  Rng rng(seed);
  const Graph g = gen::connected_gnp(static_cast<Vertex>(n), p, rng);
  const Vertex s = 0;
  const RpOracle oracle(g, s);
  const BfsTree& ts = oracle.tree();
  for (Vertex t = 0; t < g.num_vertices(); ++t) {
    const SinglePairRp rp = replacement_paths(g, ts, t);
    const auto expect = oracle.replacement_row(t);
    ASSERT_EQ(rp.avoiding.size(), expect.size()) << "t=" << t;
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(rp.avoiding[i], expect[i]) << "t=" << t << " edge#" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SinglePairParamTest,
    testing::Values(std::make_tuple(8, 0.4, 1), std::make_tuple(16, 0.3, 2),
                    std::make_tuple(32, 0.15, 3), std::make_tuple(64, 0.08, 4),
                    std::make_tuple(64, 0.2, 5), std::make_tuple(100, 0.05, 6),
                    std::make_tuple(100, 0.5, 7), std::make_tuple(150, 0.03, 8)));

class SinglePairFamilyTest : public testing::TestWithParam<int> {};

TEST_P(SinglePairFamilyTest, MatchesOracleOnStructuredFamilies) {
  Rng rng(97 + GetParam());
  std::vector<Graph> graphs;
  graphs.push_back(gen::grid(5, 8));
  graphs.push_back(gen::cycle(17));
  graphs.push_back(gen::barbell(5, 4));
  graphs.push_back(gen::star_of_paths(4, 5));
  graphs.push_back(gen::path_with_chords(60, 12, rng));
  graphs.push_back(gen::random_tree(40, rng));
  for (const Graph& g : graphs) {
    const Vertex s = static_cast<Vertex>(rng.next_below(g.num_vertices()));
    const RpOracle oracle(g, s);
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      const SinglePairRp rp = replacement_paths(g, oracle.tree(), t);
      const auto expect = oracle.replacement_row(t);
      ASSERT_EQ(rp.avoiding.size(), expect.size());
      for (std::size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(rp.avoiding[i], expect[i])
            << "n=" << g.num_vertices() << " s=" << s << " t=" << t << " i=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SinglePairFamilyTest, testing::Range(0, 5));

// --------------------------------------------------------- edge cases

TEST(SinglePair, SourceEqualsTarget) {
  const Graph g = gen::cycle(5);
  const SinglePairRp rp = replacement_paths(g, 2, 2);
  EXPECT_EQ(rp.path.size(), 1u);
  EXPECT_TRUE(rp.edges.empty());
  EXPECT_TRUE(rp.avoiding.empty());
}

TEST(SinglePair, UnreachableTarget) {
  Graph g(4, {{0, 1}, {2, 3}});
  const SinglePairRp rp = replacement_paths(g, 0, 3);
  EXPECT_TRUE(rp.path.empty());
  EXPECT_TRUE(rp.avoiding.empty());
}

TEST(SinglePair, AdjacentPair) {
  const Graph g = gen::cycle(5);
  const SinglePairRp rp = replacement_paths(g, 0, 1);
  ASSERT_EQ(rp.avoiding.size(), 1u);
  EXPECT_EQ(rp.avoiding[0], 4u);  // around the cycle
}

TEST(SinglePair, ReplacementNeverShorterThanShortest) {
  Rng rng(41);
  const Graph g = gen::connected_gnp(80, 0.06, rng);
  const BfsTree ts(g, 0);
  for (Vertex t = 0; t < g.num_vertices(); ++t) {
    const SinglePairRp rp = replacement_paths(g, ts, t);
    for (const Dist d : rp.avoiding) EXPECT_GE(d, ts.dist(t));
  }
}

TEST(SinglePair, CompleteGraphReplacementsAreDetours) {
  const Graph g = gen::complete(6);
  const SinglePairRp rp = replacement_paths(g, 0, 5);
  ASSERT_EQ(rp.avoiding.size(), 1u);
  EXPECT_EQ(rp.avoiding[0], 2u);  // any 2-hop detour
}

}  // namespace
}  // namespace msrp
