// End-to-end correctness of the MSRP solver against the brute-force oracle.
//
// The algorithm is Monte Carlo (exact whp): at the scales and oversampling
// used here, the fixed seeds below give exact equality for every (s, t, e)
// triple. Two deterministic cross-checks are also exercised: the exact mode
// (every edge near, Section 7.1 alone answers everything) and the per-pair
// MMG baseline.
#include <gtest/gtest.h>

#include "baseline/baselines.hpp"
#include "core/msrp.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace msrp {
namespace {

std::vector<Vertex> pick_sources(const Graph& g, std::uint32_t sigma, Rng& rng) {
  auto picks = rng.sample_without_replacement(g.num_vertices(), sigma);
  return {picks.begin(), picks.end()};
}

/// Verifies `got` row-for-row against the brute-force oracle.
void expect_exact(const Graph& g, const std::vector<Vertex>& sources,
                  const MsrpResult& got, const std::string& tag) {
  const MsrpResult want = solve_msrp_brute_force(g, sources);
  for (const Vertex s : sources) {
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      const auto wrow = want.row(s, t);
      const auto grow = got.row(s, t);
      ASSERT_EQ(grow.size(), wrow.size()) << tag << " s=" << s << " t=" << t;
      for (std::size_t i = 0; i < wrow.size(); ++i) {
        EXPECT_EQ(grow[i], wrow[i])
            << tag << " s=" << s << " t=" << t << " pos=" << i
            << " (n=" << g.num_vertices() << " m=" << g.num_edges() << ")";
      }
    }
  }
}

/// Upper-bound sanity that must hold for ANY seed: results are lengths of
/// genuine replacement paths, so they can never undershoot the truth.
void expect_sound(const Graph& g, const std::vector<Vertex>& sources, const MsrpResult& got) {
  const MsrpResult want = solve_msrp_brute_force(g, sources);
  for (const Vertex s : sources) {
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      const auto wrow = want.row(s, t);
      const auto grow = got.row(s, t);
      ASSERT_EQ(grow.size(), wrow.size());
      for (std::size_t i = 0; i < wrow.size(); ++i) {
        EXPECT_GE(grow[i], wrow[i]) << "undershoot! s=" << s << " t=" << t << " pos=" << i;
      }
    }
  }
}

Config tuned(std::uint64_t seed, LandmarkRpMethod method = LandmarkRpMethod::kMmgPerPair) {
  Config cfg;
  cfg.seed = seed;
  cfg.oversample = 3.0;  // small-n insurance for the whp guarantees
  cfg.landmark_rp = method;
  return cfg;
}

// ---------------------------------------------------------------- families

struct FamilyCase {
  std::string name;
  Graph graph;
  std::uint32_t sigma;
};

std::vector<FamilyCase> make_families(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FamilyCase> out;
  out.push_back({"gnp48", gen::connected_gnp(48, 0.12, rng), 3});
  out.push_back({"gnp80", gen::connected_gnp(80, 0.06, rng), 4});
  out.push_back({"grid6x7", gen::grid(6, 7), 3});
  out.push_back({"cycle30", gen::cycle(30), 2});
  out.push_back({"chords", gen::path_with_chords(60, 15, rng), 3});
  out.push_back({"barbell", gen::barbell(6, 4), 2});
  out.push_back({"star", gen::star_of_paths(4, 6), 3});
  out.push_back({"tree", gen::random_tree(40, rng), 3});
  out.push_back({"dense", gen::connected_gnp(32, 0.4, rng), 5});
  return out;
}

class MsrpFamilyTest : public testing::TestWithParam<int> {};

TEST_P(MsrpFamilyTest, MmgModeExactOnFamilies) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(1000 + seed);
  for (auto& fc : make_families(seed)) {
    const auto sources = pick_sources(fc.graph, fc.sigma, rng);
    const MsrpResult res = solve_msrp(fc.graph, sources, tuned(seed * 17 + 1));
    expect_exact(fc.graph, sources, res, fc.name + "/mmg");
  }
}

TEST_P(MsrpFamilyTest, BkModeExactOnFamilies) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(2000 + seed);
  for (auto& fc : make_families(seed)) {
    const auto sources = pick_sources(fc.graph, fc.sigma, rng);
    const MsrpResult res =
        solve_msrp(fc.graph, sources, tuned(seed * 31 + 7, LandmarkRpMethod::kBkAuxGraphs));
    expect_exact(fc.graph, sources, res, fc.name + "/bk");
  }
}

TEST_P(MsrpFamilyTest, ExactModeIsSeedIndependent) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(3000 + seed);
  for (auto& fc : make_families(seed)) {
    const auto sources = pick_sources(fc.graph, fc.sigma, rng);
    Config cfg;
    cfg.seed = 0xDEAD0000 + seed;  // arbitrary: exact mode must not care
    cfg.exact = true;
    const MsrpResult res = solve_msrp(fc.graph, sources, cfg);
    expect_exact(fc.graph, sources, res, fc.name + "/exact");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MsrpFamilyTest, testing::Range(0, 4));

// ------------------------------------------------------ sigma interpolation

class MsrpSigmaTest : public testing::TestWithParam<std::uint32_t> {};

TEST_P(MsrpSigmaTest, ExactAcrossSigma) {
  const std::uint32_t sigma = GetParam();
  Rng rng(500 + sigma);
  const Graph g = gen::connected_gnp(64, 0.08, rng);
  const auto sources = pick_sources(g, sigma, rng);
  expect_exact(g, sources, solve_msrp(g, sources, tuned(sigma)), "sigma/mmg");
  expect_exact(g, sources,
               solve_msrp(g, sources, tuned(sigma, LandmarkRpMethod::kBkAuxGraphs)),
               "sigma/bk");
}

INSTANTIATE_TEST_SUITE_P(Sweep, MsrpSigmaTest, testing::Values(1u, 2u, 4u, 8u, 16u, 64u));

// ----------------------------------------------------------- soundness sweep

TEST(MsrpSoundness, NeverUndershootsAcrossManySeeds) {
  // Soundness (no undercount) is a deterministic guarantee — check it across
  // seeds with NO oversampling, where misses (overshoot) are actually likely.
  Rng graph_rng(99);
  const Graph g = gen::path_with_chords(80, 20, graph_rng);
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Config cfg;
    cfg.seed = seed;
    cfg.oversample = 0.5;
    cfg.near_scale = 1.0;
    const std::vector<Vertex> sources{0, 40};
    expect_sound(g, sources, solve_msrp(g, sources, cfg));
    cfg.landmark_rp = LandmarkRpMethod::kBkAuxGraphs;
    expect_sound(g, sources, solve_msrp(g, sources, cfg));
  }
}

// ----------------------------------------------------------------- edge cases

TEST(Msrp, SingleVertexGraph) {
  Graph g(1);
  const MsrpResult res = solve_msrp(g, {0});
  EXPECT_TRUE(res.row(0, 0).empty());
  EXPECT_EQ(res.shortest(0, 0), 0u);
}

TEST(Msrp, TwoVertices) {
  Graph g(2, {{0, 1}});
  const MsrpResult res = solve_msrp(g, {0});
  ASSERT_EQ(res.row(0, 1).size(), 1u);
  EXPECT_EQ(res.row(0, 1)[0], kInfDist);  // bridge: no replacement
}

TEST(Msrp, DisconnectedGraph) {
  Graph g(6, {{0, 1}, {1, 2}, {0, 2}, {4, 5}});
  const MsrpResult res = solve_msrp(g, {0, 4});
  EXPECT_TRUE(res.row(0, 4).empty());      // unreachable target
  EXPECT_EQ(res.shortest(0, 4), kInfDist);
  ASSERT_EQ(res.row(0, 2).size(), 1u);
  EXPECT_EQ(res.row(0, 2)[0], 2u);         // around the triangle
  ASSERT_EQ(res.row(4, 5).size(), 1u);
  EXPECT_EQ(res.row(4, 5)[0], kInfDist);
}

TEST(Msrp, AllVerticesAsSources) {
  Rng rng(7);
  const Graph g = gen::connected_gnp(24, 0.2, rng);
  std::vector<Vertex> all;
  for (Vertex v = 0; v < g.num_vertices(); ++v) all.push_back(v);
  expect_exact(g, all, solve_msrp(g, all, tuned(3)), "all-sources");
}

TEST(Msrp, DuplicateSourcesRejected) {
  Graph g(3, {{0, 1}, {1, 2}});
  EXPECT_THROW(solve_msrp(g, {0, 0}), std::invalid_argument);
}

TEST(Msrp, NoSourcesRejected) {
  Graph g(3, {{0, 1}, {1, 2}});
  EXPECT_THROW(solve_msrp(g, {}), std::invalid_argument);
}

TEST(Msrp, SourceOutOfRangeRejected) {
  Graph g(3, {{0, 1}, {1, 2}});
  EXPECT_THROW(solve_msrp(g, {5}), std::invalid_argument);
}

TEST(Msrp, SsrpConvenienceMatchesMsrp) {
  Rng rng(11);
  const Graph g = gen::connected_gnp(40, 0.1, rng);
  const MsrpResult a = solve_ssrp(g, 3, tuned(5));
  const MsrpResult b = solve_msrp(g, {3}, tuned(5));
  for (Vertex t = 0; t < g.num_vertices(); ++t) {
    const auto ra = a.row(3, t), rb = b.row(3, t);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) EXPECT_EQ(ra[i], rb[i]);
  }
}

TEST(Msrp, DeterministicForFixedSeed) {
  Rng rng(13);
  const Graph g = gen::connected_gnp(60, 0.08, rng);
  const std::vector<Vertex> sources{1, 2, 3};
  const MsrpResult a = solve_msrp(g, sources, tuned(42));
  const MsrpResult b = solve_msrp(g, sources, tuned(42));
  for (const Vertex s : sources) {
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      const auto ra = a.row(s, t), rb = b.row(s, t);
      ASSERT_EQ(ra.size(), rb.size());
      for (std::size_t i = 0; i < ra.size(); ++i) EXPECT_EQ(ra[i], rb[i]);
    }
  }
}

// ----------------------------------------------------------- result queries

TEST(MsrpResult, AvoidingResolvesArbitraryEdges) {
  Rng rng(17);
  const Graph g = gen::connected_gnp(40, 0.12, rng);
  const std::vector<Vertex> sources{0};
  const MsrpResult res = solve_msrp(g, sources, tuned(9));
  const MsrpResult want = solve_msrp_brute_force(g, sources);
  for (Vertex t = 0; t < g.num_vertices(); ++t) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      // Off-path edges leave the canonical distance unchanged; on-path edges
      // must match the brute row.
      EXPECT_EQ(res.avoiding(0, t, e), want.avoiding(0, t, e)) << "t=" << t << " e=" << e;
    }
  }
}

TEST(MsrpResult, QueryValidation) {
  Graph g(3, {{0, 1}, {1, 2}});
  const MsrpResult res = solve_msrp(g, {0});
  EXPECT_THROW(res.row(2, 0), std::invalid_argument);       // not a source
  EXPECT_THROW(res.avoiding(0, 0, 99), std::invalid_argument);  // bad edge
  EXPECT_THROW(res.source_index(1), std::invalid_argument);
}

TEST(MsrpResult, StatsPopulated) {
  Rng rng(19);
  const Graph g = gen::connected_gnp(50, 0.1, rng);
  const MsrpResult res = solve_msrp(g, {0, 1}, tuned(21, LandmarkRpMethod::kBkAuxGraphs));
  const MsrpStats& st = res.stats();
  EXPECT_GE(st.num_landmarks, 2u);  // at least the sources
  EXPECT_GE(st.num_centers, st.num_landmarks);
  EXPECT_FALSE(st.phase_seconds.empty());
  EXPECT_GT(st.bk_center_landmark_aux_arcs, 0u);
}

// ------------------------------------------------------------- baselines

TEST(Baselines, PerPairMatchesBruteForce) {
  Rng rng(23);
  const Graph g = gen::connected_gnp(50, 0.1, rng);
  const std::vector<Vertex> sources{0, 7, 13};
  const MsrpResult pp = solve_msrp_per_pair(g, sources);
  expect_exact(g, sources, pp, "per-pair");
}

}  // namespace
}  // namespace msrp
