// Boolean matrix multiplication: baselines against each other, and the
// Section 9 reduction through MSRP against the baselines (Theorem 28).
#include <gtest/gtest.h>

#include "bmm/multiply.hpp"
#include "bmm/reduction.hpp"
#include "graph/properties.hpp"
#include "tree/bfs_tree.hpp"

namespace msrp::bmm {
namespace {

Config exact_cfg() {
  Config cfg;
  cfg.exact = true;  // deterministic readout, independent of sampling luck
  return cfg;
}

// ----------------------------------------------------------------- matrix

TEST(BoolMatrix, SetGetRoundTrip) {
  BoolMatrix m(70);  // spans two words per row
  m.set(0, 0);
  m.set(0, 69);
  m.set(69, 1);
  EXPECT_TRUE(m.get(0, 0));
  EXPECT_TRUE(m.get(0, 69));
  EXPECT_TRUE(m.get(69, 1));
  EXPECT_FALSE(m.get(1, 1));
  m.set(0, 69, false);
  EXPECT_FALSE(m.get(0, 69));
  EXPECT_EQ(m.popcount(), 2u);
}

TEST(BoolMatrix, RandomDensity) {
  Rng rng(1);
  const BoolMatrix m = BoolMatrix::random(100, 0.3, rng);
  EXPECT_NEAR(static_cast<double>(m.popcount()), 3000.0, 450.0);
}

TEST(BoolMatrix, PaddedPreservesContent) {
  Rng rng(2);
  const BoolMatrix m = BoolMatrix::random(10, 0.5, rng);
  const BoolMatrix p = m.padded(17);
  for (std::uint32_t r = 0; r < 10; ++r) {
    for (std::uint32_t c = 0; c < 10; ++c) EXPECT_EQ(p.get(r, c), m.get(r, c));
  }
  for (std::uint32_t r = 10; r < 17; ++r) {
    for (std::uint32_t c = 0; c < 17; ++c) EXPECT_FALSE(p.get(r, c));
  }
  EXPECT_THROW(m.padded(5), std::invalid_argument);
}

// ------------------------------------------------------------- baselines

class MultiplyParamTest
    : public testing::TestWithParam<std::tuple<std::uint32_t, double, std::uint64_t>> {};

TEST_P(MultiplyParamTest, BitsetMatchesNaive) {
  const auto [n, density, seed] = GetParam();
  Rng rng(seed);
  const BoolMatrix a = BoolMatrix::random(n, density, rng);
  const BoolMatrix b = BoolMatrix::random(n, density, rng);
  EXPECT_TRUE(multiply_bitset(a, b) == multiply_naive(a, b));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MultiplyParamTest,
                         testing::Values(std::make_tuple(1u, 0.5, 1),
                                         std::make_tuple(7u, 0.3, 2),
                                         std::make_tuple(33u, 0.1, 3),
                                         std::make_tuple(64u, 0.5, 4),
                                         std::make_tuple(65u, 0.05, 5),
                                         std::make_tuple(120u, 0.02, 6)));

TEST(Multiply, IdentityIsNeutral) {
  Rng rng(7);
  const BoolMatrix a = BoolMatrix::random(50, 0.2, rng);
  const BoolMatrix i = BoolMatrix::identity(50);
  EXPECT_TRUE(multiply_bitset(a, i) == a);
  EXPECT_TRUE(multiply_bitset(i, a) == a);
}

TEST(Multiply, DimensionMismatchThrows) {
  EXPECT_THROW(multiply_naive(BoolMatrix(3), BoolMatrix(4)), std::invalid_argument);
}

// ---------------------------------------------------------------- gadget

TEST(ReductionGadget, StructuralInvariants) {
  Rng rng(8);
  const std::uint32_t sigma = 2, q = 3;
  const std::uint32_t n = sigma * q * q;  // 18, exactly 1 gadget per row block
  const BoolMatrix a = BoolMatrix::random(n, 0.3, rng);
  const BoolMatrix b = BoolMatrix::random(n, 0.3, rng);
  const ReductionGadget gd = build_reduction_gadget(a, b, 0, sigma, q);

  EXPECT_EQ(gd.sources.size(), sigma);
  EXPECT_EQ(gd.c_vertex.size(), n);
  for (const auto& ce : gd.chunk_edges) EXPECT_EQ(ce.size(), q - 1);
  // Core edges = nnz(A) + nnz(B); chunk edges = sigma (q - 1); pendant
  // edges = sigma * sum_{p=1..q} (2(p-1) + 1) = sigma * q^2.
  const auto expected_edges = a.popcount() + b.popcount() +
                              std::uint64_t{sigma} * (q - 1) + std::uint64_t{sigma} * q * q;
  EXPECT_EQ(gd.graph.num_edges(), expected_edges);
  // Pendant distances: source v(q) to a(row of p) is q + p - 1.
  const BfsTree ts(gd.graph, gd.sources[0]);
  for (std::uint32_t p = 1; p <= q; ++p) {
    const Vertex a_row = static_cast<Vertex>(gd.first_row + (p - 1));
    EXPECT_LE(ts.dist(a_row), q + p - 1) << "p=" << p;
  }
}

// -------------------------------------------------------------- reduction

class ReductionParamTest
    : public testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t, double, int>> {};

TEST_P(ReductionParamTest, MatchesBitsetBaseline) {
  const auto [n, sigma, density, seed] = GetParam();
  Rng rng(100 + seed);
  const BoolMatrix a = BoolMatrix::random(n, density, rng);
  const BoolMatrix b = BoolMatrix::random(n, density, rng);
  const BoolMatrix want = multiply_bitset(a, b);
  const BoolMatrix got = multiply_via_msrp(a, b, sigma, exact_cfg());
  for (std::uint32_t r = 0; r < n; ++r) {
    for (std::uint32_t c = 0; c < n; ++c) {
      ASSERT_EQ(got.get(r, c), want.get(r, c))
          << "n=" << n << " sigma=" << sigma << " r=" << r << " c=" << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReductionParamTest,
                         testing::Values(std::make_tuple(4u, 1u, 0.5, 1),
                                         std::make_tuple(9u, 1u, 0.3, 2),
                                         std::make_tuple(16u, 4u, 0.25, 3),
                                         std::make_tuple(18u, 2u, 0.2, 4),
                                         std::make_tuple(20u, 5u, 0.3, 5),
                                         std::make_tuple(25u, 1u, 0.15, 6),
                                         std::make_tuple(32u, 2u, 0.1, 7),
                                         std::make_tuple(36u, 4u, 0.2, 8)));

TEST(Reduction, RandomizedMsrpAlsoDecodesCorrectly) {
  // The reduction should survive the Monte Carlo solver too (oversampled).
  Rng rng(200);
  const BoolMatrix a = BoolMatrix::random(18, 0.3, rng);
  const BoolMatrix b = BoolMatrix::random(18, 0.3, rng);
  Config cfg;
  cfg.oversample = 3.0;
  cfg.seed = 11;
  EXPECT_TRUE(multiply_via_msrp(a, b, 2, cfg) == multiply_bitset(a, b));
}

TEST(Reduction, ZeroAndDenseMatrices) {
  const std::uint32_t n = 16;
  const BoolMatrix zero(n);
  BoolMatrix dense(n);
  for (std::uint32_t r = 0; r < n; ++r) {
    for (std::uint32_t c = 0; c < n; ++c) dense.set(r, c);
  }
  EXPECT_TRUE(multiply_via_msrp(zero, dense, 4, exact_cfg()) == zero);
  EXPECT_TRUE(multiply_via_msrp(dense, zero, 4, exact_cfg()) == zero);
  EXPECT_TRUE(multiply_via_msrp(dense, dense, 4, exact_cfg()) == dense);
}

TEST(Reduction, PermutationMatrixComposition) {
  // Permutation matrices compose exactly; a sharp structural test.
  const std::uint32_t n = 16;
  BoolMatrix p1(n), p2(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    p1.set(i, (i + 3) % n);
    p2.set(i, (i * 5 + 1) % n);  // 5 coprime to 16
  }
  const BoolMatrix want = multiply_naive(p1, p2);
  EXPECT_TRUE(multiply_via_msrp(p1, p2, 1, exact_cfg()) == want);
  EXPECT_TRUE(multiply_via_msrp(p1, p2, 4, exact_cfg()) == want);
}

}  // namespace
}  // namespace msrp::bmm
