// Lemma-level reproduction tests: the probabilistic and structural claims
// the paper's analysis rests on, checked empirically on concrete instances.
#include <gtest/gtest.h>

#include <cmath>

#include "core/config.hpp"
#include "core/landmarks.hpp"
#include "graph/generators.hpp"
#include "rp/oracle.hpp"
#include "rp/single_pair.hpp"
#include "rp/vitality.hpp"

namespace msrp {
namespace {

// Observation 8: a replacement path for a k-far edge e has
// |SUFFIX(P)| >= |et| (the suffix starts before e, so it must still cover
// the distance from e to t). We verify the consequence that is actually
// used: d(s, t, e) >= d(s, divergence) + |et|, via the weaker global bound
// d(s, t, e) >= |et| checked on brute-force paths.
TEST(Observation8, ReplacementAtLeastDistanceFromEdgeToTarget) {
  Rng rng(1);
  const Graph g = gen::path_with_chords(80, 16, rng);
  const RpOracle oracle(g, 0);
  const BfsTree& ts = oracle.tree();
  for (Vertex t = 0; t < g.num_vertices(); ++t) {
    if (!ts.reachable(t)) continue;
    const auto row = oracle.replacement_row(t);
    const Dist depth = ts.dist(t);
    for (std::uint32_t pos = 0; pos < row.size(); ++pos) {
      const Dist et = depth - pos - 1;  // distance from e's far end to t
      if (row[pos] != kInfDist) {
        EXPECT_GE(row[pos], et) << "t=" << t << " pos=" << pos;
        EXPECT_GE(row[pos], depth) << "replacement shorter than the original";
      }
    }
  }
}

// Lemma 9 (statistical): if a path suffix is longer than 2^{k+1} T, then a
// vertex of L_k lies within 2^k T of its end whp. We measure the empirical
// miss rate over many sampled hierarchies on a long path.
TEST(Lemma9, LandmarkHitsLongSuffixes) {
  const Vertex n = 4096;
  Config cfg;
  cfg.paper_constants = true;  // the literal Definition 3 probabilities
  const Params params(n, 1, cfg);
  int misses = 0;
  const int trials = 40;
  for (int trial = 0; trial < trials; ++trial) {
    Rng rng(1000 + trial);
    const LevelSets lm(params, {}, rng);
    for (std::uint32_t k = 0; k + 1 < std::min(3u, params.num_levels()); ++k) {
      // A "suffix" = any window of length 2^k T at the end of a long run;
      // the lemma needs a member of L_k inside it.
      const Dist radius = params.far_radius(k);
      if (radius >= n) continue;
      std::vector<bool> in_lk(n, false);
      for (const Vertex v : lm.level(k)) in_lk[v] = true;
      // Check 8 disjoint windows of length `radius` as stand-in suffixes.
      for (Vertex start = 0; start + radius <= n && start < 8 * radius;
           start += radius) {
        bool hit = false;
        for (Vertex v = start; v < start + radius; ++v) hit = hit || in_lk[v];
        misses += !hit;
      }
    }
  }
  // Paper: miss probability <= 1/n^4 per path; allow a generous empirical 2%.
  EXPECT_LE(misses, std::max(1, trials * 8 * 3 / 50));
}

// Lemma 11: for a near edge, a large replacement (|P| > |se| + 2T) has
// |SUFFIX(P)| > 2T. Consequence checked: large replacements exceed the
// original distance by more than... we verify the defining inequality
// against brute-force values on instances engineered to have large detours.
TEST(Lemma11, LargeReplacementsHaveLongSuffixes) {
  // Cycle: failing any edge of the path forces the full detour around.
  const Graph g = gen::cycle(64);
  const RpOracle oracle(g, 0);
  const BfsTree& ts = oracle.tree();
  const Vertex t = 20;
  const auto row = oracle.replacement_row(t);
  const Dist depth = ts.dist(t);
  for (std::uint32_t pos = 0; pos < row.size(); ++pos) {
    // Replacement goes the long way: 64 - 20 = 44 > depth always.
    EXPECT_EQ(row[pos], 64u - 20u);
    // |SUFFIX(P)| >= |P| - |s..divergence| >= |P| - pos > 2T for small T:
    EXPECT_GT(row[pos] - pos, 0u);
    EXPECT_GT(row[pos], depth);
  }
}

// Lemma 18 (statistical): on any path, between a center of priority k and
// the next higher-priority center lie O~(2^k sqrt(n/sigma)) vertices. We
// measure maximal gaps between consecutive C_{k+1} members along a path and
// compare with the window budget the implementation allocates.
TEST(Lemma18, IntervalLengthsFitTheWindows) {
  const Vertex n = 4096;
  Config cfg;
  cfg.paper_constants = true;
  const Params params(n, 4, cfg);
  int violations = 0;
  for (int trial = 0; trial < 25; ++trial) {
    Rng rng(2000 + trial);
    const LevelSets centers(params, {}, rng);
    for (std::uint32_t k = 0; k + 1 <= std::min(2u, params.num_levels()); ++k) {
      std::vector<bool> higher(n, false);
      for (std::uint32_t j = k + 1; j <= params.num_levels(); ++j) {
        for (const Vertex v : centers.level(j)) higher[v] = true;
      }
      // Largest gap between consecutive higher-priority members on 0..n-1
      // (the identity path as the worst-case sr path).
      Dist gap = 0, cur = 0;
      for (Vertex v = 0; v < n; ++v) {
        cur = higher[v] ? 0 : cur + 1;
        gap = std::max(gap, cur);
      }
      if (gap > params.window(k)) ++violations;
    }
  }
  EXPECT_LE(violations, 2);  // whp claim with a generous empirical allowance
}

// Lemma 4 consequence: |L| = O~(sqrt(n sigma)). Checked with the literal
// constants: expected sum over levels is <= 8 sqrt(n sigma).
TEST(Lemma4, TotalLandmarkCount) {
  const Vertex n = 8192;
  for (const std::uint32_t sigma : {1u, 4u, 16u}) {
    Config cfg;
    const Params params(n, sigma, cfg);
    Rng rng(3000 + sigma);
    const LevelSets lm(params, {}, rng);
    const double budget = 8.0 * std::sqrt(static_cast<double>(n) * sigma) * 1.3;
    EXPECT_LE(static_cast<double>(lm.members().size()), budget) << "sigma=" << sigma;
  }
}

// -------------------------------------------------------------- vitality

TEST(Vitality, RanksBridgeFirst) {
  // Canonical path 0-2-3 (via the chord): (2,3) is a bridge — infinite
  // vitality; (0,2) detours through 1 at vitality 1.
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}, {0, 2}});
  const auto vital = most_vital_edges(g, 0, 3, 10);
  ASSERT_EQ(vital.size(), 2u);
  EXPECT_EQ(vital[0].vitality, kInfDist);
  const auto [u, v] = g.endpoints(vital[0].edge);
  EXPECT_EQ(u, 2u);
  EXPECT_EQ(v, 3u);
  EXPECT_EQ(vital[1].vitality, 1u);  // 0-1-2-3 instead of 0-2-3
  EXPECT_EQ(vital[1].replacement, 3u);
}

TEST(Vitality, TopKTruncates) {
  const Graph g = gen::cycle(12);
  const auto vital = most_vital_edges(g, 0, 6, 2);
  ASSERT_EQ(vital.size(), 2u);
  // On a cycle all path edges tie (replacement = the other arc, 6): tie
  // break by position.
  EXPECT_EQ(vital[0].position, 0u);
  EXPECT_EQ(vital[1].position, 1u);
  EXPECT_EQ(vital[0].vitality, 0u);  // 6 - 6
}

TEST(Vitality, MatchesOracleValues) {
  Rng rng(5);
  const Graph g = gen::connected_gnp(50, 0.1, rng);
  const RpOracle oracle(g, 3);
  const auto vital = most_vital_edges(g, 3, 47, 1000);
  const auto row = oracle.replacement_row(47);
  ASSERT_EQ(vital.size(), row.size());
  for (const VitalEdge& ve : vital) {
    EXPECT_EQ(ve.replacement, row[ve.position]);
  }
}

TEST(Vitality, SourceEqualsTargetEmpty) {
  const Graph g = gen::cycle(5);
  EXPECT_TRUE(most_vital_edges(g, 2, 2, 5).empty());
}

}  // namespace
}  // namespace msrp
