// Unit tests for the MSRP core internals: Params, LevelSets, TreePool,
// NearSmall (Section 7.1), interval decomposition / MTC (Section 8.3), and
// the LandmarkRpTable accessor semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/assembly.hpp"
#include "core/bk.hpp"
#include "core/bottleneck.hpp"
#include "core/center_landmark.hpp"
#include "core/intervals.hpp"
#include "core/landmark_rp.hpp"
#include "core/landmarks.hpp"
#include "core/near_small.hpp"
#include "core/scratch.hpp"
#include "core/source_center.hpp"
#include "graph/generators.hpp"
#include "rp/oracle.hpp"

namespace msrp {
namespace {

// ------------------------------------------------------------------ params

TEST(Params, NearThresholdScaling) {
  Config cfg;
  cfg.near_scale = 2.0;
  const Params p(400, 4, cfg);
  EXPECT_EQ(p.near_threshold(), 20u);  // 2 * sqrt(400 / 4)
}

TEST(Params, PaperConstantsUseLogN) {
  Config cfg;
  cfg.paper_constants = true;
  const Params p(1024, 1, cfg);
  EXPECT_EQ(p.near_threshold(), 320u);  // log2(1024) * sqrt(1024)
}

TEST(Params, ExactModeCoversWholeGraph) {
  Config cfg;
  cfg.exact = true;
  const Params p(100, 2, cfg);
  EXPECT_GE(p.near_threshold(), 100u);
}

TEST(Params, SampleProbHalvesPerLevel) {
  Config cfg;
  const Params p(10000, 1, cfg);
  for (std::uint32_t k = 0; k + 1 <= p.num_levels(); ++k) {
    if (p.sample_prob(k) < 1.0) {
      EXPECT_NEAR(p.sample_prob(k + 1), p.sample_prob(k) / 2, 1e-12);
    }
  }
  EXPECT_NEAR(p.sample_prob(0), 4.0 / 100.0, 1e-12);  // 4 sqrt(1/10000)
}

TEST(Params, FarBucketBoundaries) {
  Config cfg;
  cfg.near_scale = 1.0;
  const Params p(256, 1, cfg);  // T = 16
  EXPECT_EQ(p.near_threshold(), 16u);
  EXPECT_EQ(p.far_bucket(32), 0u);   // [2T, 4T)
  EXPECT_EQ(p.far_bucket(63), 0u);
  EXPECT_EQ(p.far_bucket(64), 1u);   // [4T, 8T)
  EXPECT_EQ(p.far_bucket(128), 2u);
}

TEST(Params, WindowGrowsWithPriorityAndCaps) {
  Config cfg;
  cfg.near_scale = 1.0;
  cfg.window_scale = 4.0;
  const Params p(256, 1, cfg);
  EXPECT_EQ(p.window(0), 64u);   // 4 * 16
  EXPECT_EQ(p.window(1), 128u);  // doubles per level
  EXPECT_EQ(p.window(10), 256u);  // capped at n
}

TEST(Params, Validation) {
  Config bad;
  bad.window_scale = 1.0;
  EXPECT_THROW(Params(10, 1, bad), std::invalid_argument);
  EXPECT_THROW(Params(10, 0, Config{}), std::invalid_argument);
  EXPECT_THROW(Params(10, 11, Config{}), std::invalid_argument);
}

// --------------------------------------------------------------- level sets

TEST(LevelSets, ForcedMembersAlwaysPresent) {
  Config cfg;
  const Params p(200, 2, cfg);
  Rng rng(1);
  const LevelSets ls(p, {5, 7}, rng);
  EXPECT_TRUE(ls.contains(5));
  EXPECT_TRUE(ls.contains(7));
  EXPECT_GE(ls.priority(5), 0);
  // Forced members land in level 0.
  const auto& l0 = ls.level(0);
  EXPECT_NE(std::find(l0.begin(), l0.end(), 5), l0.end());
}

TEST(LevelSets, SizeConcentration) {
  // Lemma 4: |L_k| concentrates around 4 sqrt(n sigma) / 2^k.
  Config cfg;
  const Params p(20000, 5, cfg);
  Rng rng(2);
  const LevelSets ls(p, {}, rng);
  const double expected0 = 4.0 * std::sqrt(20000.0 * 5);  // = 1264.9
  EXPECT_NEAR(ls.level(0).size(), expected0, 0.25 * expected0);
  EXPECT_NEAR(ls.level(2).size(), expected0 / 4, 0.4 * expected0 / 4);
}

TEST(LevelSets, PriorityIsHighestLevel) {
  Config cfg;
  cfg.oversample = 100.0;  // force high membership at several levels
  const Params p(64, 1, cfg);
  Rng rng(3);
  const LevelSets ls(p, {}, rng);
  for (const Vertex v : ls.members()) {
    const auto prio = static_cast<std::uint32_t>(ls.priority(v));
    const auto& lvl = ls.level(prio);
    EXPECT_NE(std::find(lvl.begin(), lvl.end(), v), lvl.end());
    for (std::uint32_t k = prio + 1; k < ls.num_levels(); ++k) {
      const auto& higher = ls.level(k);
      EXPECT_EQ(std::find(higher.begin(), higher.end(), v), higher.end());
    }
  }
}

TEST(LevelSets, MembersSortedUnique) {
  Config cfg;
  const Params p(500, 3, cfg);
  Rng rng(4);
  const LevelSets ls(p, {0, 499}, rng);
  const auto& m = ls.members();
  EXPECT_TRUE(std::is_sorted(m.begin(), m.end()));
  EXPECT_EQ(std::set<Vertex>(m.begin(), m.end()).size(), m.size());
}

// ----------------------------------------------------------------- tree pool

TEST(TreePool, BuildsOnceAndReuses) {
  const Graph g = gen::grid(4, 4);
  TreePool pool(g);
  const RootedTree& a = pool.at(3);
  const RootedTree& b = pool.at(3);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(pool.size(), 1u);
  pool.ensure({3, 5, 7});
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.existing(5).root(), 5u);
  EXPECT_THROW(pool.existing(9), std::invalid_argument);
}

// ---------------------------------------------------------------- near small

TEST(NearSmall, ValuesMatchOracleForSmallPaths) {
  // In exact mode (T >= n) near-small covers every replacement path.
  Rng rng(5);
  const Graph g = gen::connected_gnp(40, 0.12, rng);
  Config cfg;
  cfg.exact = true;
  const Params params(g.num_vertices(), 1, cfg);
  const RootedTree rs(g, 0);
  const NearSmall ns(g, rs, params);
  const RpOracle oracle(g, 0);
  for (Vertex t = 0; t < g.num_vertices(); ++t) {
    if (!rs.tree.reachable(t) || t == 0) continue;
    const auto expect = oracle.replacement_row(t);
    for (std::uint32_t pos = 0; pos < expect.size(); ++pos) {
      EXPECT_EQ(ns.value(t, pos), expect[pos]) << "t=" << t << " pos=" << pos;
    }
  }
}

TEST(NearSmall, UpperBoundForAnyThreshold) {
  Rng rng(6);
  const Graph g = gen::path_with_chords(50, 10, rng);
  Config cfg;
  cfg.near_scale = 1.0;
  const Params params(g.num_vertices(), 1, cfg);
  const RootedTree rs(g, 0);
  const NearSmall ns(g, rs, params);
  const RpOracle oracle(g, 0);
  for (Vertex t = 0; t < g.num_vertices(); ++t) {
    if (!rs.tree.reachable(t) || t == 0) continue;
    const auto expect = oracle.replacement_row(t);
    for (std::uint32_t pos = ns.first_near_pos(t); pos < expect.size(); ++pos) {
      EXPECT_GE(ns.value(t, pos), expect[pos]);
    }
  }
}

TEST(NearSmall, NearRangeRespectsThreshold) {
  const Graph g = gen::path(30);
  Config cfg;
  cfg.near_scale = 1.0;  // T = sqrt(30) ~ 5 -> 2T = 11 near edges
  const Params params(g.num_vertices(), 1, cfg);
  const RootedTree rs(g, 0);
  const NearSmall ns(g, rs, params);
  const Dist t2 = 2 * params.near_threshold();
  for (Vertex t = 1; t < 30; ++t) {
    const Dist depth = rs.dist(t);
    EXPECT_EQ(ns.first_near_pos(t), depth > t2 ? depth - t2 : 0);
    EXPECT_FALSE(ns.is_near(t, depth));  // one past the end
  }
}

TEST(NearSmall, ReconstructedPathsAreValidAndAvoiding) {
  Rng rng(8);
  const Graph g = gen::connected_gnp(36, 0.15, rng);
  Config cfg;
  cfg.exact = true;
  const Params params(g.num_vertices(), 1, cfg);
  const RootedTree rs(g, 0);
  const NearSmall ns(g, rs, params);
  for (Vertex t = 0; t < g.num_vertices(); ++t) {
    if (!rs.tree.reachable(t) || t == 0) continue;
    for (std::uint32_t pos = 0; pos < rs.dist(t); ++pos) {
      const Dist v = ns.value(t, pos);
      if (v == kInfDist) continue;
      const auto path = ns.reconstruct_path(t, pos);
      ASSERT_EQ(path.size(), static_cast<std::size_t>(v) + 1);
      EXPECT_EQ(path.front(), 0u);
      EXPECT_EQ(path.back(), t);
      const EdgeId avoid = ns.near_edge(t, pos).first;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const EdgeId step = g.find_edge(path[i], path[i + 1]);
        ASSERT_NE(step, kNoEdge) << "non-edge step in reconstructed path";
        EXPECT_NE(step, avoid) << "reconstructed path uses the avoided edge";
      }
    }
  }
}

TEST(NearSmall, UnreachableAndTrivialTargets) {
  Graph g(4, {{0, 1}, {2, 3}});
  Config cfg;
  const Params params(4, 1, cfg);
  const RootedTree rs(g, 0);
  const NearSmall ns(g, rs, params);
  EXPECT_FALSE(ns.is_near(2, 0));           // unreachable
  EXPECT_EQ(ns.value(2, 0), kInfDist);
  EXPECT_FALSE(ns.is_near(0, 0));           // the source itself
  EXPECT_EQ(ns.value(1, 0), kInfDist);      // bridge edge: no replacement
}

// ------------------------------------------------- intervals / MTC / BK bits

struct BkFixture {
  Graph g;
  Config cfg;
  Params params;
  MsrpResult result;
  TreePool pool;
  LevelSets landmarks;
  LevelSets centers;
  std::vector<const RootedTree*> source_trees;
  std::vector<std::unique_ptr<NearSmall>> ns_owned;
  std::vector<const NearSmall*> ns;
  std::optional<BkContext> ctx;

  static Config make_cfg() {
    Config c;
    c.seed = 77;
    c.oversample = 3.0;
    return c;
  }

  static std::vector<Vertex> forced_centers(const std::vector<Vertex>& sources,
                                            const LevelSets& lm) {
    std::vector<Vertex> f = sources;
    f.insert(f.end(), lm.members().begin(), lm.members().end());
    return f;
  }

  BkFixture(Graph graph, std::vector<Vertex> sources, Rng& rng)
      : g(std::move(graph)),
        cfg(make_cfg()),
        params(g.num_vertices(), static_cast<std::uint32_t>(sources.size()), cfg),
        result(g, sources),
        pool(g),
        landmarks(params, sources, rng),
        centers(params, forced_centers(sources, landmarks), rng) {
    pool.ensure(landmarks.members());
    pool.ensure(centers.members());
    for (const Vertex s : sources) source_trees.push_back(&result.rooted(s));
    for (const RootedTree* rt : source_trees) {
      ns_owned.push_back(std::make_unique<NearSmall>(g, *rt, params));
      ns.push_back(ns_owned.back().get());
    }
    ctx.emplace(g, params, pool, landmarks, centers, source_trees, ns);
  }
};

TEST(Intervals, BoundariesBracketPathAndCoverEdges) {
  Rng rng(9);
  Graph g = gen::path_with_chords(70, 12, rng);
  BkFixture fx(std::move(g), {0, 35}, rng);
  SourceCenterTable dsc(*fx.ctx);
  BuildScratch scratch;
  dsc.build_source(0, scratch);
  LandmarkRpTable dsr(fx.g, fx.source_trees, fx.landmarks.members());
  CenterLandmarkTable dcr(*fx.ctx, dsr);

  const RootedTree& rs = *fx.source_trees[0];
  for (const Vertex r : fx.landmarks.members()) {
    if (!rs.tree.reachable(r) || r == rs.root()) continue;
    const auto path = rs.tree.path_to(r);
    const auto dec = decompose_sr_path(*fx.ctx, 0, path, dsc, dcr);
    const auto depth = static_cast<std::uint32_t>(path.size() - 1);
    ASSERT_GE(dec.boundary_pos.size(), 2u);
    EXPECT_EQ(dec.boundary_pos.front(), 0u);
    EXPECT_EQ(dec.boundary_pos.back(), depth);
    EXPECT_TRUE(std::is_sorted(dec.boundary_pos.begin(), dec.boundary_pos.end()));
    // Every boundary is a center sitting on the path at its position.
    for (std::size_t b = 0; b < dec.boundary_pos.size(); ++b) {
      EXPECT_EQ(path[dec.boundary_pos[b]], dec.boundary_center[b]);
      EXPECT_GE(fx.ctx->center_index[dec.boundary_center[b]], 0);
    }
    // Edge -> interval mapping is consistent with the boundaries.
    ASSERT_EQ(dec.interval_of.size(), depth);
    for (std::uint32_t pos = 0; pos < depth; ++pos) {
      const std::uint32_t iv = dec.interval_of[pos];
      ASSERT_LT(iv + 1, dec.boundary_pos.size());
      EXPECT_GE(pos, dec.boundary_pos[iv]);
      EXPECT_LT(pos, dec.boundary_pos[iv + 1]);
    }
    // Bottleneck edges maximize MTC within their interval.
    for (std::uint32_t iv = 0; iv < dec.num_intervals(); ++iv) {
      const std::uint32_t bpos = dec.bottleneck_pos[iv];
      EXPECT_EQ(dec.interval_of[bpos], iv);
      for (std::uint32_t pos = dec.boundary_pos[iv]; pos < dec.boundary_pos[iv + 1]; ++pos) {
        EXPECT_LE(dec.mtc[pos], dec.mtc[bpos]);
      }
    }
  }
}

TEST(Intervals, StaircasePrioritiesRiseThenFall) {
  Rng rng(10);
  Graph g = gen::path_with_chords(90, 15, rng);
  BkFixture fx(std::move(g), {0}, rng);
  SourceCenterTable dsc(*fx.ctx);
  BuildScratch scratch;
  dsc.build_source(0, scratch);
  LandmarkRpTable dsr(fx.g, fx.source_trees, fx.landmarks.members());
  CenterLandmarkTable dcr(*fx.ctx, dsr);

  const RootedTree& rs = *fx.source_trees[0];
  for (const Vertex r : fx.landmarks.members()) {
    if (!rs.tree.reachable(r) || r == rs.root()) continue;
    const auto dec = decompose_sr_path(*fx.ctx, 0, rs.tree.path_to(r), dsc, dcr);
    // Priorities along the selected boundaries are unimodal (rise then fall).
    std::vector<std::uint32_t> prio;
    for (const Vertex c : dec.boundary_center) prio.push_back(fx.ctx->priority(c));
    const auto peak = std::max_element(prio.begin(), prio.end());
    EXPECT_TRUE(std::is_sorted(prio.begin(), peak + 1));
    EXPECT_TRUE(std::is_sorted(prio.rbegin(), std::reverse_iterator(peak)));
  }
}

TEST(SourceCenter, MatchesOracleWithinWindows) {
  Rng rng(11);
  Graph g = gen::connected_gnp(48, 0.1, rng);
  BkFixture fx(std::move(g), {0, 5}, rng);
  SourceCenterTable dsc(*fx.ctx);
  BuildScratch scratch;
  dsc.build_source(0, scratch);
  dsc.build_source(1, scratch);

  for (std::uint32_t si = 0; si < 2; ++si) {
    const RootedTree& rs = *fx.source_trees[si];
    const RpOracle oracle(fx.g, rs.root());
    for (const Vertex c : fx.ctx->center_list) {
      if (!rs.tree.reachable(c) || c == rs.root()) continue;
      const auto path = rs.tree.path_to(c);
      const Dist depth = rs.dist(c);
      const Dist wlen =
          std::min<Dist>(depth, fx.params.window(fx.ctx->priority(c)));
      for (std::uint32_t j = 0; j < wlen; ++j) {
        // Edge at pos_from_c = j has deeper endpoint path[depth - j].
        const Vertex child = path[depth - j];
        const EdgeId eid = rs.tree.parent_edge(child);
        EXPECT_EQ(dsc.avoiding(si, c, child), oracle.distance_avoiding(c, eid))
            << "si=" << si << " c=" << c << " j=" << j;
      }
    }
  }
}

TEST(CenterLandmark, MatchesOracleWithinWindows) {
  Rng rng(12);
  Graph g = gen::connected_gnp(40, 0.12, rng);
  BkFixture fx(std::move(g), {0}, rng);
  SourceCenterTable dsc(*fx.ctx);
  BuildScratch scratch;
  dsc.build_source(0, scratch);
  LandmarkRpTable dsr(fx.g, fx.source_trees, fx.landmarks.members());
  CenterLandmarkTable dcr(*fx.ctx, dsr);
  dcr.accumulate_small_via(0);
  for (std::uint32_t ci = 0; ci < fx.ctx->num_centers(); ++ci) dcr.build_center(ci, scratch);

  for (const Vertex c : fx.ctx->center_list) {
    const RootedTree& rc = fx.pool.existing(c);
    const RpOracle oracle(fx.g, c);
    for (const Vertex r : fx.landmarks.members()) {
      if (!rc.tree.reachable(r) || r == c) continue;
      const auto path = rc.tree.path_to(r);
      const Dist wlen = std::min<Dist>(rc.dist(r),
                                       fx.params.window(fx.ctx->priority(c)));
      for (std::uint32_t j = 0; j < wlen; ++j) {
        const Vertex child = path[j + 1];
        const EdgeId eid = rc.tree.parent_edge(child);
        const auto [eu, ev] = fx.g.endpoints(eid);
        EXPECT_EQ(dcr.avoiding(c, r, eid, eu, ev), oracle.distance_avoiding(r, eid))
            << "c=" << c << " r=" << r << " j=" << j;
      }
    }
  }
}

// --------------------------------------------------------- landmark table

TEST(LandmarkRpTable, AccessorSemantics) {
  Rng rng(13);
  const Graph g = gen::connected_gnp(30, 0.15, rng);
  MsrpResult result(g, {0});
  std::vector<const RootedTree*> trees{&result.rooted(0)};
  const std::vector<Vertex> lm{1, 5, 9};
  LandmarkRpTable table(g, trees, lm);
  table.fill_mmg(g);

  const RpOracle oracle(g, 0);
  const RootedTree& rs = *trees[0];
  for (std::uint32_t li = 0; li < 3; ++li) {
    const Vertex r = lm[li];
    EXPECT_EQ(table.landmark_index(r), static_cast<std::int32_t>(li));
    // Every tree edge of T_s resolves correctly: on-path -> row, off -> |sr|.
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto [u, v] = g.endpoints(e);
      Vertex child = kNoVertex;
      if (rs.tree.parent_edge(u) == e) child = u;
      if (rs.tree.parent_edge(v) == e) child = v;
      if (child == kNoVertex) continue;  // non-tree edge: accessor unused
      const std::uint32_t pos = rs.dist(child) - 1;
      EXPECT_EQ(table.avoiding(0, li, child, pos), oracle.distance_avoiding(r, e))
          << "r=" << r << " e=" << e;
    }
  }
  EXPECT_EQ(table.landmark_index(2), -1);
}

}  // namespace
}  // namespace msrp
