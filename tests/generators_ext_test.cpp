// Tests for the extended generator set (hypercube, random regular,
// bipartite) and their interaction with the solver.
#include <gtest/gtest.h>

#include "baseline/baselines.hpp"
#include "core/msrp.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace msrp {
namespace {

TEST(Hypercube, Structure) {
  const Graph g = gen::hypercube(4);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_EQ(g.num_edges(), 32u);  // n * d / 2
  for (Vertex v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_EQ(diameter(g), 4u);
  EXPECT_TRUE(bridges(g).empty());
}

TEST(Hypercube, DistancesAreHammingDistances) {
  const Graph g = gen::hypercube(5);
  const BfsTree t(g, 0);
  for (Vertex v = 0; v < 32; ++v) {
    EXPECT_EQ(t.dist(v), static_cast<Dist>(__builtin_popcount(v)));
  }
}

TEST(Hypercube, EveryReplacementIsShort) {
  // In a hypercube, avoiding one edge costs at most +2 (route via a third
  // dimension); MSRP must find those replacements exactly.
  const Graph g = gen::hypercube(4);
  const MsrpResult res = solve_msrp_brute_force(g, {0});
  for (Vertex t = 1; t < 16; ++t) {
    const Dist d = res.shortest(0, t);
    for (const Dist rd : res.row(0, t)) {
      ASSERT_NE(rd, kInfDist);
      EXPECT_LE(rd, d + 2);
    }
  }
}

TEST(Hypercube, DimensionValidation) {
  EXPECT_THROW(gen::hypercube(0), std::invalid_argument);
  EXPECT_THROW(gen::hypercube(25), std::invalid_argument);
}

TEST(RandomRegular, DegreesNearTarget) {
  Rng rng(2);
  const Graph g = gen::random_regular(400, 6, rng);
  std::uint64_t total = 0;
  for (Vertex v = 0; v < 400; ++v) {
    EXPECT_LE(g.degree(v), 6u);
    total += g.degree(v);
  }
  // Rejection drops only a vanishing fraction of stubs.
  EXPECT_GE(total, static_cast<std::uint64_t>(0.95 * 400 * 6));
}

TEST(RandomRegular, ExpanderHasSmallDiameter) {
  Rng rng(3);
  const Graph g = gen::random_regular(256, 6, rng);
  ASSERT_TRUE(is_connected(g));
  EXPECT_LE(diameter(g), 8u);
}

TEST(RandomRegular, Validation) {
  Rng rng(4);
  EXPECT_THROW(gen::random_regular(5, 5, rng), std::invalid_argument);  // d > n-1
  EXPECT_THROW(gen::random_regular(5, 3, rng), std::invalid_argument);  // odd n*d
}

TEST(RandomBipartite, NoOddCycles) {
  Rng rng(5);
  const Graph g = gen::random_bipartite(20, 25, 0.2, rng);
  EXPECT_EQ(g.num_vertices(), 45u);
  // Bipartite check: BFS 2-coloring from every component root.
  const auto comp = connected_components(g);
  for (Vertex root = 0; root < g.num_vertices(); ++root) {
    const BfsTree t(g, root);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto [u, v] = g.endpoints(e);
      if (t.reachable(u) && t.reachable(v)) {
        EXPECT_NE(t.dist(u) % 2, t.dist(v) % 2) << "odd cycle via edge " << e;
      }
    }
    (void)comp;
    break;  // one root suffices: edges within other components checked below
  }
}

TEST(RandomBipartite, SolverExactOnBipartite) {
  Rng rng(6);
  const Graph g = gen::random_bipartite(16, 16, 0.3, rng);
  Config cfg;
  cfg.oversample = 3.0;
  const MsrpResult got = solve_msrp(g, {0, 20}, cfg);
  const MsrpResult want = solve_msrp_brute_force(g, {0, 20});
  for (const Vertex s : {0u, 20u}) {
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      const auto wrow = want.row(s, t);
      const auto grow = got.row(s, t);
      ASSERT_EQ(grow.size(), wrow.size());
      for (std::size_t i = 0; i < wrow.size(); ++i) EXPECT_EQ(grow[i], wrow[i]);
    }
  }
}

TEST(NewFamilies, MsrpExactOnHypercubeAndRegular) {
  Rng rng(7);
  Config cfg;
  cfg.oversample = 3.0;
  {
    const Graph g = gen::hypercube(5);
    const std::vector<Vertex> sources{0, 31};
    const MsrpResult got = solve_msrp(g, sources, cfg);
    const MsrpResult want = solve_msrp_brute_force(g, sources);
    for (const Vertex s : sources) {
      for (Vertex t = 0; t < g.num_vertices(); ++t) {
        const auto wrow = want.row(s, t);
        const auto grow = got.row(s, t);
        ASSERT_EQ(grow.size(), wrow.size());
        for (std::size_t i = 0; i < wrow.size(); ++i) EXPECT_EQ(grow[i], wrow[i]);
      }
    }
  }
  {
    const Graph g = gen::random_regular(64, 4, rng);
    const std::vector<Vertex> sources{0, 1, 2};
    const MsrpResult got = solve_msrp(g, sources, cfg);
    const MsrpResult want = solve_msrp_brute_force(g, sources);
    for (const Vertex s : sources) {
      for (Vertex t = 0; t < g.num_vertices(); ++t) {
        const auto wrow = want.row(s, t);
        const auto grow = got.row(s, t);
        ASSERT_EQ(grow.size(), wrow.size());
        for (std::size_t i = 0; i < wrow.size(); ++i) EXPECT_EQ(grow[i], wrow[i]);
      }
    }
  }
}

}  // namespace
}  // namespace msrp
