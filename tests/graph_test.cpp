#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"

namespace msrp {
namespace {

// ------------------------------------------------------------------- graph

TEST(Graph, EmptyGraph) {
  Graph g(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(Graph, TriangleAdjacency) {
  Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  ASSERT_EQ(g.neighbors(0).size(), 2u);
  EXPECT_EQ(g.neighbors(0)[0].to, 1u);
  EXPECT_EQ(g.neighbors(0)[1].to, 2u);
}

TEST(Graph, NeighborsSorted) {
  Graph g(6, {{0, 5}, {0, 2}, {0, 4}, {0, 1}});
  const auto adj = g.neighbors(0);
  for (std::size_t i = 1; i < adj.size(); ++i) EXPECT_LT(adj[i - 1].to, adj[i].to);
}

TEST(Graph, EdgeIdsSharedBetweenEndpoints) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    EXPECT_EQ(g.find_edge(u, v), e);
    EXPECT_EQ(g.find_edge(v, u), e);
  }
}

TEST(Graph, EndpointsNormalized) {
  Graph g(3, {{2, 0}});
  const auto [u, v] = g.endpoints(0);
  EXPECT_EQ(u, 0u);
  EXPECT_EQ(v, 2u);
}

TEST(Graph, FindMissingEdge) {
  Graph g(3, {{0, 1}});
  EXPECT_EQ(g.find_edge(0, 2), kNoEdge);
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(Graph, RejectsSelfLoop) {
  EXPECT_THROW(Graph(3, {{1, 1}}), std::invalid_argument);
}

TEST(Graph, RejectsParallelEdges) {
  EXPECT_THROW(Graph(3, {{0, 1}, {1, 0}}), std::invalid_argument);
  EXPECT_THROW(Graph(3, {{0, 1}, {0, 1}}), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRange) {
  EXPECT_THROW(Graph(2, {{0, 2}}), std::invalid_argument);
}

TEST(GraphBuilder, AddVertexGrows) {
  GraphBuilder b(2);
  const Vertex v = b.add_vertex();
  EXPECT_EQ(v, 2u);
  b.add_edge(0, v);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_TRUE(g.has_edge(0, 2));
}

// -------------------------------------------------------------- generators

TEST(Generators, PathStructure) {
  const Graph g = gen::path(5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter(g), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
}

TEST(Generators, CycleStructure) {
  const Graph g = gen::cycle(6);
  EXPECT_EQ(g.num_edges(), 6u);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_EQ(diameter(g), 3u);
}

TEST(Generators, GridStructure) {
  const Graph g = gen::grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3 + 2u * 4);  // horizontal + vertical
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter(g), 5u);
}

TEST(Generators, CompleteStructure) {
  const Graph g = gen::complete(5);
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_EQ(diameter(g), 1u);
}

TEST(Generators, ConnectedGnpIsConnected) {
  Rng rng(3);
  for (const Vertex n : {2u, 10u, 50u, 200u}) {
    const Graph g = gen::connected_gnp(n, 2.0 / n, rng);
    EXPECT_TRUE(is_connected(g)) << "n=" << n;
    EXPECT_GE(g.num_edges(), n - 1);
  }
}

TEST(Generators, ErdosRenyiDensity) {
  Rng rng(5);
  const Graph g = gen::erdos_renyi(200, 0.1, rng);
  const double expected = 0.1 * 200 * 199 / 2;
  EXPECT_NEAR(g.num_edges(), expected, 0.25 * expected);
}

TEST(Generators, ErdosRenyiExtremes) {
  Rng rng(5);
  EXPECT_EQ(gen::erdos_renyi(50, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(gen::erdos_renyi(10, 1.0, rng).num_edges(), 45u);
}

TEST(Generators, PathWithChordsKeepsBackbone) {
  Rng rng(7);
  const Graph g = gen::path_with_chords(100, 20, rng);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.num_edges(), 99u + 20u);
  for (Vertex v = 0; v + 1 < 100; ++v) EXPECT_TRUE(g.has_edge(v, v + 1));
}

TEST(Generators, BarbellHasBridges) {
  const Graph g = gen::barbell(4, 3);
  EXPECT_TRUE(is_connected(g));
  // The 4 path edges between the cliques are all bridges.
  EXPECT_EQ(bridges(g).size(), 4u);
}

TEST(Generators, StarOfPaths) {
  const Graph g = gen::star_of_paths(3, 4);
  EXPECT_EQ(g.num_vertices(), 13u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(diameter(g), 8u);
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(11);
  const Graph g = gen::random_tree(64, rng);
  EXPECT_EQ(g.num_edges(), 63u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(bridges(g).size(), 63u);  // every tree edge is a bridge
}

TEST(Generators, AvgDegreeTarget) {
  Rng rng(13);
  const Graph g = gen::connected_avg_degree(500, 8.0, rng);
  const double avg = 2.0 * g.num_edges() / g.num_vertices();
  EXPECT_NEAR(avg, 8.0, 2.5);  // backbone inflates slightly
  EXPECT_TRUE(is_connected(g));
}

// -------------------------------------------------------------- properties

TEST(Properties, ComponentsOfDisjointUnion) {
  Graph g(6, {{0, 1}, {1, 2}, {3, 4}});
  EXPECT_EQ(num_components(g), 3u);
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[3], comp[5]);
  EXPECT_FALSE(is_connected(g));
}

TEST(Properties, DiameterDisconnectedIsInf) {
  Graph g(4, {{0, 1}, {2, 3}});
  EXPECT_EQ(diameter(g), kInfDist);
  EXPECT_EQ(eccentricity(g, 0), kInfDist);
}

TEST(Properties, EccentricityOfPathEnd) {
  const Graph g = gen::path(7);
  EXPECT_EQ(eccentricity(g, 0), 6u);
  EXPECT_EQ(eccentricity(g, 3), 3u);
}

TEST(Properties, BridgesOfCycleEmpty) {
  EXPECT_TRUE(bridges(gen::cycle(8)).empty());
}

TEST(Properties, BridgesOfPathAll) {
  EXPECT_EQ(bridges(gen::path(10)).size(), 9u);
}

TEST(Properties, BridgeDetectionMixed) {
  // Two triangles joined by one edge: only the joining edge is a bridge.
  Graph g(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}});
  const auto b = bridges(g);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(g.endpoints(b[0]), std::make_pair(Vertex{2}, Vertex{3}));
}

// --------------------------------------------------------------------- i/o

TEST(Io, RoundTrip) {
  Rng rng(17);
  const Graph g = gen::connected_gnp(40, 0.15, rng);
  std::stringstream ss;
  io::write_edge_list(ss, g);
  const Graph h = io::read_edge_list(ss);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) EXPECT_EQ(h.endpoints(e), g.endpoints(e));
}

TEST(Io, CommentsSkipped) {
  std::stringstream ss("# a comment\n3 2\n# another\n0 1\n1 2\n");
  const Graph g = io::read_edge_list(ss);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Io, MalformedInputsThrow) {
  {
    std::stringstream ss("");
    EXPECT_THROW(io::read_edge_list(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("3 2\n0 1\n");  // truncated
    EXPECT_THROW(io::read_edge_list(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("2 1\n0 5\n");  // endpoint out of range
    EXPECT_THROW(io::read_edge_list(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("junk\n");
    EXPECT_THROW(io::read_edge_list(ss), std::invalid_argument);
  }
}

TEST(Io, FileRoundTrip) {
  const Graph g = gen::grid(4, 5);
  const std::string path = testing::TempDir() + "/msrp_io_test.txt";
  io::save_edge_list(path, g);
  const Graph h = io::load_edge_list(path);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(io::load_edge_list("/nonexistent/definitely/missing.txt"), std::runtime_error);
}

}  // namespace
}  // namespace msrp
