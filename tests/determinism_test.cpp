// The parallel build contract: solve_msrp with threads = 2/4/8 is
// BIT-IDENTICAL to the sequential build — same canonical trees (dists,
// parents, parent edges), same replacement rows, same snapshot bytes. The
// solver's parallel loops only ever write item-private state, so the
// dynamic work distribution cannot leak into the output; this suite is the
// executable form of that argument (and the TSan target for the build's
// concurrency). Sharing one external pool across solves must not change
// results either — that is how QueryService runs cold builds.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/msrp.hpp"
#include "graph/generators.hpp"
#include "service/snapshot.hpp"
#include "util/thread_pool.hpp"

namespace msrp {
namespace {

Graph random_instance(Rng& rng) {
  const Vertex n = static_cast<Vertex>(8 + rng.next_below(40));
  const double p = 0.05 + 0.4 * rng.next_double();
  switch (rng.next_below(4)) {
    case 0: return gen::connected_gnp(n, p, rng);
    case 1: return gen::random_tree(n, rng);
    case 2: return gen::path_with_chords(n, 1 + static_cast<std::uint32_t>(n / 4), rng);
    default: return gen::grid(3 + static_cast<Vertex>(rng.next_below(4)),
                              3 + static_cast<Vertex>(rng.next_below(8)));
  }
}

std::string snapshot_bytes(const MsrpResult& res) {
  std::stringstream ss;
  service::Snapshot::capture(res).write(ss, service::SnapshotFormat::kV2);
  return ss.str();
}

/// Trees + rows, field by field, with the failing coordinate in the message.
void expect_identical(const MsrpResult& a, const MsrpResult& b, const Graph& g,
                      const std::string& label) {
  ASSERT_EQ(a.sources(), b.sources()) << label;
  for (const Vertex s : a.sources()) {
    const BfsTree& ta = a.tree(s);
    const BfsTree& tb = b.tree(s);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(ta.dist(v), tb.dist(v)) << label << " s=" << s << " v=" << v;
      ASSERT_EQ(ta.parent(v), tb.parent(v)) << label << " s=" << s << " v=" << v;
      ASSERT_EQ(ta.parent_edge(v), tb.parent_edge(v)) << label << " s=" << s << " v=" << v;
    }
  }
  for (std::uint32_t si = 0; si < a.num_sources(); ++si) {
    const auto ra = a.raw_rows(si);
    const auto rb = b.raw_rows(si);
    ASSERT_EQ(ra.size(), rb.size()) << label << " si=" << si;
    for (std::size_t i = 0; i < ra.size(); ++i) {
      ASSERT_EQ(ra[i], rb[i]) << label << " si=" << si << " cell=" << i;
    }
    const auto oa = a.row_offsets(si);
    const auto ob = b.row_offsets(si);
    ASSERT_TRUE(std::equal(oa.begin(), oa.end(), ob.begin(), ob.end()))
        << label << " si=" << si;
  }
  // End to end: the serving-layer byte image must match too.
  ASSERT_EQ(snapshot_bytes(a), snapshot_bytes(b)) << label;
}

TEST(Determinism, ParallelBuildBitIdenticalToSequential) {
  const std::uint64_t base_seed = 0xDE7E2517ULL;
  const int num_graphs = 25;
  for (int iter = 0; iter < num_graphs; ++iter) {
    Rng rng(base_seed + static_cast<std::uint64_t>(iter));
    const Graph g = random_instance(rng);
    const std::uint32_t sigma =
        1 + static_cast<std::uint32_t>(rng.next_below(std::min<Vertex>(4, g.num_vertices())));
    const auto picks = rng.sample_without_replacement(g.num_vertices(), sigma);
    const std::vector<Vertex> sources(picks.begin(), picks.end());

    Config cfg;
    cfg.seed = rng.next_u64();
    cfg.exact = rng.next_bernoulli(0.25);
    // Alternate the landmark-table method so both pipelines are covered.
    cfg.landmark_rp =
        (iter % 2 == 0) ? LandmarkRpMethod::kMmgPerPair : LandmarkRpMethod::kBkAuxGraphs;

    cfg.build_threads = 1;
    const MsrpResult sequential = solve_msrp(g, sources, cfg);

    for (const unsigned threads : {2u, 4u, 8u}) {
      cfg.build_threads = threads;
      const MsrpResult parallel = solve_msrp(g, sources, cfg);
      expect_identical(sequential, parallel, g,
                       "iter=" + std::to_string(iter) +
                           " threads=" + std::to_string(threads) + " method=" +
                           (cfg.landmark_rp == LandmarkRpMethod::kMmgPerPair ? "mmg" : "bk"));
    }
  }
}

TEST(Determinism, SharedExternalPoolMatchesSequential) {
  // One pool reused across several solves (the QueryService pattern):
  // scratch arenas inside the solver are per-solve, so state cannot leak
  // from one solve into the next through the pool.
  ThreadPool pool(4);
  Rng rng(0xCAFEBABEULL);
  for (int iter = 0; iter < 6; ++iter) {
    const Graph g = random_instance(rng);
    const std::vector<Vertex> sources{0};

    Config cfg;
    cfg.seed = rng.next_u64();
    cfg.landmark_rp =
        (iter % 2 == 0) ? LandmarkRpMethod::kMmgPerPair : LandmarkRpMethod::kBkAuxGraphs;
    const MsrpResult sequential = solve_msrp(g, sources, cfg);

    cfg.build_pool = &pool;
    const MsrpResult pooled = solve_msrp(g, sources, cfg);
    expect_identical(sequential, pooled, g, "pooled iter=" + std::to_string(iter));
  }
}

}  // namespace
}  // namespace msrp
