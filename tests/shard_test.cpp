// Multi-process sharded serving: plan/slice correctness, router-vs-
// in-process differential checks, zero-copy placement accounting, worker
// death + single-flight respawn, and shared-memory cleanup on exit.
//
// These tests fork real worker processes, so they are deliberately NOT in
// the sanitizer CI regex (TSan and fork do not mix); the plain Debug and
// Release matrix runs them.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "baseline/baselines.hpp"
#include "core/msrp.hpp"
#include "graph/generators.hpp"
#include "service/query_service.hpp"
#include "service/shard_router.hpp"
#include "util/shm.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <unistd.h>
#endif

namespace msrp {
namespace {

using service::Query;
using service::ShardPlan;
using service::ShardRouter;
using service::ShardRouterOptions;
using service::Snapshot;

Snapshot demo_snapshot(Vertex n, std::uint32_t sigma, std::uint64_t seed) {
  Rng rng(seed);
  const Graph g = gen::connected_avg_degree(n, 6.0, rng);
  std::vector<Vertex> sources;
  for (std::uint32_t i = 0; i < sigma; ++i) sources.push_back(i * (n / sigma));
  return Snapshot::capture(solve_msrp(g, sources));
}

std::vector<Query> random_queries(const Snapshot& oracle, std::size_t count,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({oracle.sources()[rng.next_below(oracle.num_sources())],
                   static_cast<Vertex>(rng.next_below(oracle.num_vertices())),
                   static_cast<EdgeId>(rng.next_below(oracle.num_edges()))});
  }
  return out;
}

TEST(ShardPlanTest, ContiguousCoveringPartition) {
  const Snapshot oracle = demo_snapshot(120, 6, 1);
  for (unsigned shards : {1u, 2u, 3u, 4u, 6u, 9u}) {
    const ShardPlan plan = ShardPlan::build(oracle, shards);
    const unsigned k_total = plan.num_shards();
    EXPECT_EQ(k_total, std::min<unsigned>(shards, oracle.num_sources()));
    EXPECT_EQ(plan.begin(0), 0u);
    EXPECT_EQ(plan.end(k_total - 1), oracle.num_sources());
    std::uint64_t cells = 0;
    for (unsigned k = 0; k < k_total; ++k) {
      EXPECT_LT(plan.begin(k), plan.end(k)) << "shard " << k << " empty";
      if (k > 0) {
        EXPECT_EQ(plan.begin(k), plan.end(k - 1));
      }
      cells += plan.shard_cells(k);
      for (std::uint32_t si = plan.begin(k); si < plan.end(k); ++si) {
        EXPECT_EQ(plan.shard_of(si), k);
        EXPECT_EQ(plan.local_index(si), si - plan.begin(k));
      }
    }
    std::uint64_t want_cells = 0;
    for (std::uint32_t si = 0; si < oracle.num_sources(); ++si) {
      want_cells += oracle.cells_for_source(si) + oracle.num_vertices();
    }
    EXPECT_EQ(cells, want_cells);
  }
}

TEST(ShardPlanTest, SkewedWeightsStayBalanced) {
  // Sources differ in table size (cells scale with distance-sum); the plan
  // must stay within the greedy split's balance bound, not dump everything
  // in shard 0.
  const Snapshot oracle = demo_snapshot(400, 8, 7);
  const ShardPlan plan = ShardPlan::build(oracle, 4);
  std::uint64_t max_cells = 0, total = 0;
  for (unsigned k = 0; k < plan.num_shards(); ++k) {
    max_cells = std::max(max_cells, plan.shard_cells(k));
    total += plan.shard_cells(k);
  }
  // No shard carries more than the average plus one source's worth of the
  // heaviest weight (the greedy split's worst case).
  std::uint64_t heaviest = 0;
  for (std::uint32_t si = 0; si < oracle.num_sources(); ++si) {
    heaviest = std::max(heaviest,
                        oracle.cells_for_source(si) + oracle.num_vertices());
  }
  EXPECT_LE(max_cells, total / plan.num_shards() + heaviest);
}

TEST(SnapshotSliceTest, SliceAnswersMatchFull) {
  const Snapshot oracle = demo_snapshot(150, 5, 3);
  const std::vector<std::uint32_t> subset{1, 2, 4};
  const Snapshot sliced = oracle.slice(subset);
  ASSERT_EQ(sliced.num_sources(), subset.size());
  EXPECT_EQ(sliced.num_vertices(), oracle.num_vertices());
  EXPECT_EQ(sliced.num_edges(), oracle.num_edges());
  EXPECT_NE(sliced.content_digest(), oracle.content_digest());
  for (std::uint32_t i = 0; i < subset.size(); ++i) {
    const Vertex s = oracle.sources()[subset[i]];
    ASSERT_EQ(sliced.sources()[i], s);
    for (Vertex t = 0; t < oracle.num_vertices(); t += 7) {
      for (EdgeId e = 0; e < oracle.num_edges(); e += 13) {
        ASSERT_EQ(sliced.avoiding(s, t, e), oracle.avoiding(s, t, e));
      }
    }
  }
}

TEST(SnapshotSliceTest, SliceRoundTripsThroughAttach) {
  const Snapshot oracle = demo_snapshot(100, 4, 9);
  const Snapshot sliced = oracle.slice(std::vector<std::uint32_t>{0, 3});
  auto image = std::make_shared<std::vector<std::uint8_t>>(
      sliced.encode(service::SnapshotFormat::kV2));
  const Snapshot attached =
      Snapshot::attach(image->data(), image->size(), image, {.verify_cells = true});
  EXPECT_TRUE(attached.is_mapped());
  EXPECT_EQ(attached.content_digest(), sliced.content_digest());
}

#if defined(__unix__) || defined(__APPLE__)

TEST(ShardRouterTest, MatchesInProcessOnRandomGraphs) {
  ASSERT_TRUE(ShardRouter::supported());
  service::QueryService svc({.threads = 2, .min_parallel_batch = 64});
  for (std::uint64_t iter = 0; iter < 6; ++iter) {
    Rng rng(0x5AADD + iter);
    const Vertex n = static_cast<Vertex>(20 + rng.next_below(80));
    const Graph g = gen::connected_gnp(n, 0.15, rng);
    const std::uint32_t sigma = 1 + static_cast<std::uint32_t>(rng.next_below(5));
    const auto picks = rng.sample_without_replacement(n, sigma);
    const auto oracle = svc.build(g, {picks.begin(), picks.end()});

    const std::vector<Query> queries = random_queries(*oracle, 2000, iter);
    const std::vector<Dist> want = svc.query_batch(*oracle, queries);

    for (unsigned shards : {1u, 2u, 3u}) {
      ShardRouterOptions opts;
      opts.shards = shards;
      ShardRouter router(*oracle, opts);
      EXPECT_EQ(router.query_batch(queries), want)
          << "shards=" << shards << " iter=" << iter;
    }
  }
}

TEST(ShardRouterTest, PlacesSegmentsOnceAndServesZeroCopy) {
  const Snapshot oracle = demo_snapshot(150, 4, 11);
  ShardRouterOptions opts;
  opts.shards = 4;
  ShardRouter router(oracle, opts);
  ASSERT_EQ(router.num_shards(), 4u);

  const auto before = router.stats();
  EXPECT_EQ(before.segments_placed, 4u);
  EXPECT_GT(before.bytes_placed, 0u);

  // Many batches; the snapshot bytes must be placed exactly once — serving
  // is zero-copy out of the segments, never a per-query (or per-batch) copy.
  std::size_t total = 0;
  for (int round = 0; round < 8; ++round) {
    const auto queries = random_queries(oracle, 500, 100 + round);
    const auto answers = router.query_batch(queries);
    ASSERT_EQ(answers.size(), queries.size());
    total += queries.size();
  }
  const auto after = router.stats();
  EXPECT_EQ(after.segments_placed, before.segments_placed);
  EXPECT_EQ(after.bytes_placed, before.bytes_placed);
  EXPECT_EQ(after.queries_routed, total);
  EXPECT_EQ(after.respawns, 0u);
}

TEST(ShardRouterTest, RespawnsDeadWorkerAndRequeues) {
  const Snapshot oracle = demo_snapshot(150, 4, 13);
  ShardRouterOptions opts;
  opts.shards = 2;
  ShardRouter router(oracle, opts);

  const auto queries = random_queries(oracle, 3000, 17);
  const auto want = router.query_batch(queries);

  // Kill one worker outright; the next batch must detect the death, respawn
  // against the already-placed segments, requeue, and still answer
  // everything correctly.
  const long victim = router.worker_pid(1);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(static_cast<pid_t>(victim), SIGKILL), 0);

  const auto got = router.query_batch(queries);
  EXPECT_EQ(got, want);
  const auto st = router.stats();
  EXPECT_GE(st.respawns, 1u);
  EXPECT_EQ(st.segments_placed, 2u);  // respawn reuses the placed segments
  EXPECT_NE(router.worker_pid(1), victim);
}

TEST(ShardRouterTest, ShmCountersSurviveWorkerKillAndRespawn) {
  // The workers publish per-worker request counts into the router-owned
  // shm metrics page. The page outlives the workers, and a respawned
  // worker re-finds its slot by name — so counts accumulate exactly
  // across a kill, with no lost or doubled increments. Killing while the
  // router is idle keeps the arithmetic exact: every query is popped by a
  // worker exactly once (a mid-batch kill could legitimately re-pop a
  // requeued request).
  const Snapshot oracle = demo_snapshot(150, 4, 29);
  ShardRouterOptions opts;
  opts.shards = 2;
  ShardRouter router(oracle, opts);

  const auto first = random_queries(oracle, 1000, 31);
  const auto want_first = router.query_batch(first);
  ASSERT_EQ(want_first.size(), first.size());
  EXPECT_EQ(router.worker_requests_total(), first.size());

  const long victim = router.worker_pid(1);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(static_cast<pid_t>(victim), SIGKILL), 0);

  const auto second = random_queries(oracle, 1000, 33);
  const auto answers = router.query_batch(second);
  ASSERT_EQ(answers.size(), second.size());
  EXPECT_GE(router.stats().respawns, 1u);
  EXPECT_EQ(router.worker_requests_total(), first.size() + second.size());
}

TEST(ShardRouterTest, UnlinksSegmentsOnDestruction) {
  const Snapshot oracle = demo_snapshot(80, 3, 19);
  std::vector<std::string> names;
  {
    ShardRouterOptions opts;
    opts.shards = 3;
    ShardRouter router(oracle, opts);
    names = router.segment_names();
    ASSERT_EQ(names.size(), 8u);  // snapshot + channel per shard, doorbell, metrics page
    for (const auto& name : names) {
      EXPECT_TRUE(ShmSegment::exists(name)) << name;
    }
    const auto answers = router.query_batch(random_queries(oracle, 200, 23));
    ASSERT_EQ(answers.size(), 200u);
  }
  for (const auto& name : names) {
    EXPECT_FALSE(ShmSegment::exists(name)) << name << " leaked";
  }
}

TEST(ShardRouterTest, StartupWaitIsFutexPromptNotPollingGranular) {
  // The ready wait parks on the worker-state futex and is woken the moment
  // the worker flags itself, so the time blocked in wait_worker_ready is
  // genuine worker startup (fork + shm attach), not sleep-poll quanta. A
  // generous ceiling still catches a regression to coarse polling: the old
  // 1 ms-granularity loop on a loaded machine drifted toward tens of ms
  // per shard; real startup of 4 tiny shards stays far below the bound.
  const Snapshot oracle = demo_snapshot(80, 4, 37);
  ShardRouterOptions opts;
  opts.shards = 4;
  ShardRouter router(oracle, opts);
  const auto st = router.stats();
  EXPECT_LT(st.ready_wait_us, 2'000'000u) << "ready wait looks poll-bound";
  EXPECT_EQ(st.respawns, 0u);
}

TEST(ShardRouterTest, ConcurrentBatchesOverlapAndMatchInProcess) {
  // The pipelined router must let M concurrent batches share the rings
  // under distinct tag namespaces and still merge each one bit-identically
  // to the in-process service. peak_inflight_batches > 1 pins down that
  // they really overlapped rather than serializing.
  service::QueryService svc({.threads = 2, .min_parallel_batch = 64});
  Rng rng(0xA11CE);
  const Graph g = gen::connected_avg_degree(140, 6.0, rng);
  const std::vector<Vertex> sources{0, 35, 70, 105};
  const auto oracle = svc.build(g, sources);

  constexpr int kBatches = 6;
  std::vector<std::vector<Query>> queries(kBatches);
  std::vector<std::vector<Dist>> want(kBatches);
  for (int b = 0; b < kBatches; ++b) {
    queries[b] = random_queries(*oracle, 1500, 41 + b);
    want[b] = svc.query_batch(*oracle, queries[b]);
  }

  ShardRouterOptions opts;
  opts.shards = 2;
  opts.ring_capacity = 64;  // small rings force real interleaving
  ShardRouter router(*oracle, opts);

  std::vector<std::thread> threads;
  std::vector<std::vector<Dist>> got(kBatches);
  for (int b = 0; b < kBatches; ++b) {
    threads.emplace_back([&, b] { got[b] = router.query_batch(queries[b]); });
  }
  for (auto& t : threads) t.join();
  for (int b = 0; b < kBatches; ++b) {
    EXPECT_EQ(got[b], want[b]) << "batch " << b;
  }
  const auto st = router.stats();
  EXPECT_EQ(st.batches_routed, static_cast<std::uint64_t>(kBatches));
  EXPECT_EQ(st.queries_routed, std::uint64_t{kBatches} * 1500u);
  EXPECT_GT(st.peak_inflight_batches, 1u) << "batches serialized, not pipelined";
}

TEST(ShardRouterTest, KillMidPipelineRespawnsAndAnswersAllBatches) {
  // Kill a worker while several batches are in flight: the respawn must
  // requeue the unanswered tags of every namespace, and all batches must
  // complete with answers identical to the in-process service.
  service::QueryService svc({.threads = 2, .min_parallel_batch = 64});
  Rng rng(0xD1E);
  const Graph g = gen::connected_avg_degree(140, 6.0, rng);
  const std::vector<Vertex> sources{0, 35, 70, 105};
  const auto oracle = svc.build(g, sources);

  constexpr int kBatches = 4;
  std::vector<std::vector<Query>> queries(kBatches);
  std::vector<std::vector<Dist>> want(kBatches);
  for (int b = 0; b < kBatches; ++b) {
    queries[b] = random_queries(*oracle, 4000, 53 + b);
    want[b] = svc.query_batch(*oracle, queries[b]);
  }

  ShardRouterOptions opts;
  opts.shards = 2;
  opts.ring_capacity = 64;
  ShardRouter router(*oracle, opts);

  std::vector<std::thread> threads;
  std::vector<std::vector<Dist>> got(kBatches);
  for (int b = 0; b < kBatches; ++b) {
    threads.emplace_back([&, b] { got[b] = router.query_batch(queries[b]); });
  }
  // Let the pipeline get going, then kill one worker under it.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const long victim = router.worker_pid(1);
  if (victim > 0) ::kill(static_cast<pid_t>(victim), SIGKILL);
  for (auto& t : threads) t.join();

  for (int b = 0; b < kBatches; ++b) {
    EXPECT_EQ(got[b], want[b]) << "batch " << b;
  }
  if (victim > 0) {
    // If every batch drained before the SIGKILL landed, the death goes
    // unnoticed until more work arrives; one more batch forces detection.
    EXPECT_EQ(router.query_batch(queries[0]), want[0]);
    EXPECT_GE(router.stats().respawns, 1u);
    EXPECT_NE(router.worker_pid(1), victim);
  }
}

TEST(ShardRouterTest, RejectsInvalidQueries) {
  const Snapshot oracle = demo_snapshot(60, 2, 29);
  ShardRouterOptions opts;
  opts.shards = 2;
  ShardRouter router(oracle, opts);
  const Vertex non_source = [&] {
    for (Vertex v = 0;; ++v) {
      if (!oracle.is_source(v)) return v;
    }
  }();
  EXPECT_THROW(router.query_batch(std::vector<Query>{{non_source, 0, 0}}),
               std::invalid_argument);
  EXPECT_THROW(
      router.query_batch(std::vector<Query>{{oracle.sources()[0], oracle.num_vertices(), 0}}),
      std::invalid_argument);
  EXPECT_THROW(
      router.query_batch(std::vector<Query>{{oracle.sources()[0], 0, oracle.num_edges()}}),
      std::invalid_argument);
}

TEST(QueryServiceShardingTest, ShardedServiceMatchesInProcess) {
  Rng rng(0xC0FFEE);
  const Graph g = gen::connected_avg_degree(160, 6.0, rng);
  const std::vector<Vertex> sources{0, 40, 80, 120};

  service::QueryService plain({.threads = 2, .min_parallel_batch = 64});
  service::QueryService::Options sharded_opts;
  sharded_opts.threads = 2;
  sharded_opts.min_parallel_batch = 64;
  sharded_opts.shards = 3;
  service::QueryService sharded(sharded_opts);

  const auto oracle = plain.build(g, sources);
  const auto oracle2 = sharded.build(g, sources);
  ASSERT_EQ(oracle->content_digest(), oracle2->content_digest());

  const auto queries = random_queries(*oracle, 4000, 31);
  const auto want = plain.query_batch(*oracle, queries);

  // Sync path.
  EXPECT_EQ(sharded.query_batch(*oracle2, queries), want);
  // Async future path (routing runs on the pool).
  auto res = sharded.submit_batch(oracle2, queries).get();
  ASSERT_EQ(res.error, nullptr);
  EXPECT_EQ(res.answers, want);
  EXPECT_EQ(sharded.queries_served(), 2 * queries.size());

  // The router was created once, placed once, and reused across both paths.
  const auto router = sharded.router(*oracle2);
  ASSERT_NE(router, nullptr);
  const auto st = router->stats();
  EXPECT_EQ(st.segments_placed, router->num_shards());
  EXPECT_EQ(st.queries_routed, 2 * queries.size());
}

TEST(QueryServiceShardingTest, ShardedAnswersMatchBruteForce) {
  Rng rng(0xBEEF);
  const Graph g = gen::connected_gnp(28, 0.2, rng);
  const std::vector<Vertex> sources{1, 9, 20};
  const MsrpResult truth = solve_msrp_brute_force(g, sources);

  service::QueryService::Options opts;
  opts.threads = 1;
  opts.shards = 2;
  service::QueryService svc(opts);
  const auto oracle = svc.build(g, sources);

  std::vector<Query> queries;
  std::vector<Dist> want;
  for (const Vertex s : sources) {
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        queries.push_back({s, t, e});
        want.push_back(truth.avoiding(s, t, e));
      }
    }
  }
  EXPECT_EQ(svc.query_batch(*oracle, queries), want);
}

#endif  // POSIX

}  // namespace
}  // namespace msrp
