#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "util/cuckoo_hash.hpp"
#include "util/distance.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace msrp {
namespace {

// ---------------------------------------------------------------- distance

TEST(Distance, SatAddPropagatesInfinity) {
  EXPECT_EQ(sat_add(kInfDist, 0), kInfDist);
  EXPECT_EQ(sat_add(0, kInfDist), kInfDist);
  EXPECT_EQ(sat_add(kInfDist, kInfDist), kInfDist);
  EXPECT_EQ(sat_add(kInfDist, 1, 2), kInfDist);
}

TEST(Distance, SatAddClampsOverflow) {
  EXPECT_EQ(sat_add(kInfDist - 1, kInfDist - 1), kInfDist);
  EXPECT_EQ(sat_add(kInfDist - 1, 1), kInfDist);
}

TEST(Distance, SatAddFiniteValues) {
  EXPECT_EQ(sat_add(3, 4), 7u);
  EXPECT_EQ(sat_add(1, 2, 3), 6u);
  EXPECT_TRUE(is_finite(7));
  EXPECT_FALSE(is_finite(kInfDist));
}

// --------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bernoulli(0.0));
    EXPECT_TRUE(rng.next_bernoulli(1.0));
    EXPECT_FALSE(rng.next_bernoulli(-0.5));
    EXPECT_TRUE(rng.next_bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.next_bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(9);
  const auto s = rng.sample_without_replacement(100, 20);
  EXPECT_EQ(s.size(), 20u);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  std::set<std::uint32_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (const auto v : s) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleFullPopulation) {
  Rng rng(9);
  const auto s = rng.sample_without_replacement(10, 10);
  EXPECT_EQ(s.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(Rng, SampleTooManyThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(21);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (c1.next_u64() == c2.next_u64());
  EXPECT_LT(same, 3);
}

// ------------------------------------------------------------- cuckoo hash

TEST(CuckooHash, PutFindBasic) {
  CuckooHash<int> h;
  EXPECT_TRUE(h.empty());
  h.put(1, 10);
  h.put(2, 20);
  ASSERT_NE(h.find(1), nullptr);
  EXPECT_EQ(*h.find(1), 10);
  ASSERT_NE(h.find(2), nullptr);
  EXPECT_EQ(*h.find(2), 20);
  EXPECT_EQ(h.find(3), nullptr);
  EXPECT_EQ(h.size(), 2u);
}

TEST(CuckooHash, OverwriteKeepsSingleCopy) {
  CuckooHash<int> h;
  h.put(7, 1);
  h.put(7, 2);
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(*h.find(7), 2);
}

TEST(CuckooHash, EraseAndReinsert) {
  CuckooHash<int> h;
  h.put(5, 50);
  EXPECT_TRUE(h.erase(5));
  EXPECT_FALSE(h.erase(5));
  EXPECT_EQ(h.find(5), nullptr);
  EXPECT_EQ(h.size(), 0u);
  h.put(5, 55);
  EXPECT_EQ(*h.find(5), 55);
}

TEST(CuckooHash, GetOrFallback) {
  CuckooHash<Dist> h;
  h.put(pack_key(1, 2, 3), 42);
  EXPECT_EQ(h.get_or(pack_key(1, 2, 3), kInfDist), 42u);
  EXPECT_EQ(h.get_or(pack_key(3, 2, 1), kInfDist), kInfDist);
}

TEST(CuckooHash, GrowsUnderLoad) {
  CuckooHash<std::uint64_t> h(4);
  for (std::uint64_t k = 0; k < 5000; ++k) h.put(k * 2654435761ULL, k);
  EXPECT_EQ(h.size(), 5000u);
  for (std::uint64_t k = 0; k < 5000; ++k) {
    ASSERT_NE(h.find(k * 2654435761ULL), nullptr);
    EXPECT_EQ(*h.find(k * 2654435761ULL), k);
  }
}

TEST(CuckooHash, MatchesUnorderedMapUnderRandomOps) {
  CuckooHash<std::uint32_t> h;
  std::unordered_map<std::uint64_t, std::uint32_t> ref;
  Rng rng(77);
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t key = rng.next_below(500);
    switch (rng.next_below(3)) {
      case 0: {
        const auto val = static_cast<std::uint32_t>(rng.next_below(1000));
        h.put(key, val);
        ref[key] = val;
        break;
      }
      case 1: {
        EXPECT_EQ(h.erase(key), ref.erase(key) > 0);
        break;
      }
      default: {
        const auto it = ref.find(key);
        const auto* p = h.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(p, nullptr);
        } else {
          ASSERT_NE(p, nullptr);
          EXPECT_EQ(*p, it->second);
        }
      }
    }
    EXPECT_EQ(h.size(), ref.size());
  }
}

TEST(CuckooHash, ForEachVisitsEverything) {
  CuckooHash<int> h;
  for (int k = 0; k < 100; ++k) h.put(k, k * k);
  std::set<std::uint64_t> keys;
  h.for_each([&](std::uint64_t k, int v) {
    keys.insert(k);
    EXPECT_EQ(v, static_cast<int>(k * k));
  });
  EXPECT_EQ(keys.size(), 100u);
}

TEST(CuckooHash, PackKeyIsInjectiveOnFields) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 0; b < 8; ++b) {
      for (std::uint64_t c = 0; c < 8; ++c) {
        EXPECT_TRUE(seen.insert(pack_key(a, b, c)).second);
      }
    }
  }
}

// ------------------------------------------------------------------- timer

TEST(Timer, MeasuresElapsed) {
  Timer t;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(sink, 0.0);
  const double first = t.seconds();
  const double second = t.seconds();
  EXPECT_GE(first, 0.0);
  EXPECT_LE(first, second);  // monotonic, callable repeatedly
  EXPECT_NEAR(t.millis(), t.seconds() * 1e3, 1.0);
  t.reset();
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(PhaseTimers, AccumulatesScopes) {
  PhaseTimers pt;
  { auto s = pt.scope("a"); }
  { auto s = pt.scope("a"); }
  { auto s = pt.scope("b"); }
  EXPECT_GE(pt.total("a"), 0.0);
  EXPECT_EQ(pt.totals().size(), 2u);
  EXPECT_EQ(pt.total("missing"), 0.0);
  pt.clear();
  EXPECT_TRUE(pt.totals().empty());
}

}  // namespace
}  // namespace msrp
