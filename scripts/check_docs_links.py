#!/usr/bin/env python3
"""Relative-link checker for the repo's markdown docs.

Scans the given markdown files (default: README.md and docs/*.md) for
inline links and validates every *relative* target — the file (or
directory) must exist, relative to the linking document. External links
(http/https/mailto) and pure in-page anchors (#...) are skipped; an
anchor suffix on a relative link is stripped before the existence check
(anchor contents are not validated). Exits 1 listing every broken link.

Usage: scripts/check_docs_links.py [file.md ...]

Run by the CI docs-check job; see docs/OPERATIONS.md.
"""
import glob
import os
import re
import sys

# Inline markdown links/images: [text](target) — stops at the first ')'
# not preceded by an escape; title suffixes ("... \"title\"") are split off.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def check_file(md_path):
    broken = []
    base = os.path.dirname(os.path.abspath(md_path))
    with open(md_path, encoding="utf-8") as f:
        in_code_fence = False
        for lineno, line in enumerate(f, 1):
            if line.lstrip().startswith("```"):
                in_code_fence = not in_code_fence
                continue
            if in_code_fence:
                continue
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = os.path.normpath(os.path.join(base, path))
                if not os.path.exists(resolved):
                    broken.append((md_path, lineno, target))
    return broken


def main():
    files = sys.argv[1:]
    if not files:
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        files = [os.path.join(repo_root, "README.md")] + sorted(
            glob.glob(os.path.join(repo_root, "docs", "*.md"))
        )
    broken = []
    for md in files:
        if not os.path.exists(md):
            broken.append((md, 0, "<file missing>"))
            continue
        broken.extend(check_file(md))
    if broken:
        for md, lineno, target in broken:
            print(f"{md}:{lineno}: broken relative link -> {target}", file=sys.stderr)
        print(f"{len(broken)} broken link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
