#!/usr/bin/env python3
"""Validator for the /metrics Prometheus text exposition.

Reads an exposition body (a file argument, or stdin with "-"), checks it
is structurally valid text format 0.0.4, and asserts the metric families
the serving path must always export are present:

  * every sample line parses as `name{labels} value` with a legal metric
    name and a numeric value;
  * every emitted family has a preceding `# TYPE` line, and sample names
    match their family's type (counters end in _total; histograms emit
    _bucket/_sum/_count series);
  * histogram `le` bucket edges are ascending with ascending cumulative
    counts, each series ends at le="+Inf", and the +Inf count equals the
    family's _count sample;
  * the required names below exist, including the per-stage
    msrp_query_latency_seconds histogram for all four stages.

Optionally cross-checks counters against `msrp_client --stats` output
(--stats-file): every counter the wire snapshot reports must appear in
the scrape. Exact equality is only required with --stats-exact (the CI
smoke scrapes and queries the wire at different instants, so by default
the scrape may lag or lead).

Usage:
  scripts/check_metrics_exposition.py metrics.txt [--stats-file stats.txt]
      [--stats-exact]

Exits 0 when valid, 1 listing every violation. Run by the CI
observability-smoke job; see docs/OBSERVABILITY.md.
"""
import argparse
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

REQUIRED_NAMES = [
    "msrp_server_connections_accepted_total",
    "msrp_server_batches_received_total",
    "msrp_server_queries_answered_total",
    "msrp_dispatch_dispatched_total_total",
    "msrp_dispatch_inflight_batches",
    "msrp_service_queries_served_total",
    "msrp_cache_hits_total",
]
REQUIRED_STAGES = ["decode", "queue", "execute", "flush"]


def parse_labels(label_blob):
    if not label_blob:
        return {}
    return {m.group(1): m.group(2) for m in LABEL_RE.finditer(label_blob[1:-1])}


def validate(text):
    errors = []
    types = {}  # family name -> declared type
    samples = []  # (name, labels, value)
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                errors.append(f"line {lineno}: malformed TYPE line: {line!r}")
                continue
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # HELP / comments are legal, we emit none
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample line: {line!r}")
            continue
        name, label_blob, value = m.group(1), m.group(2), m.group(3)
        if not NAME_RE.match(name):
            errors.append(f"line {lineno}: illegal metric name: {name!r}")
        try:
            float(value)
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value {value!r} for {name}")
        samples.append((name, parse_labels(label_blob), value, lineno))

    def family_of(name):
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
                if types[base] == "histogram":
                    return base
        return name

    # Every sample must belong to a declared family of a matching type.
    for name, labels, value, lineno in samples:
        fam = family_of(name)
        if fam not in types:
            errors.append(f"line {lineno}: sample {name} has no # TYPE declaration")
            continue
        ftype = types[fam]
        if ftype == "counter" and not name.endswith("_total"):
            errors.append(f"line {lineno}: counter sample {name} lacks _total suffix")
        if ftype == "histogram" and fam == name:
            errors.append(
                f"line {lineno}: histogram family {name} emitted as a bare sample"
            )

    # Histogram coherence per (family, non-le labels): ascending edges,
    # ascending cumulative counts, closed by +Inf == _count.
    series = {}
    counts = {}
    for name, labels, value, lineno in samples:
        fam = family_of(name)
        if types.get(fam) != "histogram":
            continue
        key_labels = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
        if name.endswith("_bucket"):
            series.setdefault((fam, key_labels), []).append(
                (labels.get("le"), float(value), lineno)
            )
        elif name.endswith("_count"):
            counts[(fam, key_labels)] = float(value)
    for (fam, key_labels), buckets in series.items():
        where = f"{fam}{dict(key_labels)}"
        if buckets[-1][0] != "+Inf":
            errors.append(f"{where}: bucket series does not end at le=\"+Inf\"")
            continue
        prev_edge, prev_count = None, -1.0
        for le, cum, lineno in buckets[:-1]:
            edge = float(le)
            if prev_edge is not None and edge <= prev_edge:
                errors.append(f"line {lineno}: {where}: le edges not ascending")
            if cum < prev_count:
                errors.append(f"line {lineno}: {where}: cumulative counts decreased")
            prev_edge, prev_count = edge, cum
        inf_count = buckets[-1][1]
        if inf_count < prev_count:
            errors.append(f"{where}: +Inf bucket below the last finite bucket")
        if (fam, key_labels) in counts and counts[(fam, key_labels)] != inf_count:
            errors.append(
                f"{where}: _count {counts[(fam, key_labels)]} != +Inf bucket {inf_count}"
            )

    # Required serving metrics.
    present = {name for name, _, _, _ in samples}
    for required in REQUIRED_NAMES:
        if required not in present:
            errors.append(f"required metric missing: {required}")
    stage_counts = {
        labels.get("stage"): float(value)
        for name, labels, value, _ in samples
        if name == "msrp_query_latency_seconds_count"
    }
    for stage in REQUIRED_STAGES:
        if stage not in stage_counts:
            errors.append(
                f"required histogram missing: msrp_query_latency_seconds stage={stage}"
            )
    return errors, samples, stage_counts


# Counters the act of reading perturbs: the --stats client's own connection
# is accepted before the wire snapshot and closed before the scrape, so
# these can never be read at the same instant by both paths. Exact mode
# still requires their presence, just not equality.
EXACT_EXEMPT = {
    "server.connections_accepted",
    "server.connections_closed",
}


def cross_check_stats(samples, stage_counts, stats_text, exact):
    """Compare the scrape against `msrp_client --stats` line output."""
    errors = []
    scraped = {}
    for name, labels, value, _ in samples:
        if not labels:
            scraped[name] = float(value)

    def expo(name):  # registry dotted name -> exposition counter name
        return "msrp_" + re.sub(r"[^a-zA-Z0-9_]", "_", name) + "_total"

    wire_hist = {}
    for line in stats_text.splitlines():
        parts = line.split()
        if len(parts) >= 3 and parts[0] == "counter":
            name, value = parts[1], float(parts[2])
            ename = expo(name)
            if ename not in scraped:
                errors.append(f"wire counter {name} absent from scrape as {ename}")
            elif exact and name not in EXACT_EXEMPT and scraped[ename] != value:
                errors.append(
                    f"wire counter {name}={value} != scraped {ename}={scraped[ename]}"
                )
        elif parts and parts[0] == "histogram":
            m = re.match(r"histogram (\S+)\[(\S+)\] count=(\d+)", line)
            if m:
                wire_hist[(m.group(1), m.group(2))] = float(m.group(3))
    for (name, stage), count in wire_hist.items():
        if name != "query_latency":
            continue
        if stage not in stage_counts:
            errors.append(f"wire histogram stage {stage} absent from scrape")
        elif exact and stage_counts[stage] != count:
            errors.append(
                f"wire stage {stage} count {count} != scraped {stage_counts[stage]}"
            )
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("metrics", help="exposition body file, or - for stdin")
    ap.add_argument("--stats-file", help="msrp_client --stats output to cross-check")
    ap.add_argument(
        "--stats-exact",
        action="store_true",
        help="require exact counter equality with --stats-file",
    )
    args = ap.parse_args()

    text = sys.stdin.read() if args.metrics == "-" else open(args.metrics).read()
    errors, samples, stage_counts = validate(text)
    if args.stats_file:
        stats_text = open(args.stats_file).read()
        errors += cross_check_stats(samples, stage_counts, stats_text, args.stats_exact)

    if errors:
        for e in errors:
            print(f"check_metrics_exposition: {e}", file=sys.stderr)
        print(f"check_metrics_exposition: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print(
        f"check_metrics_exposition: OK ({len(samples)} samples, "
        f"{len(stage_counts)} query_latency stages)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
