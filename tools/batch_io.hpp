// Batch-file I/O shared by the serving tools.
//
// msrp_serve (local batches) and msrp_client (remote batches) read the
// same "s t e" query files and write the same "s t e answer" lines — and
// the CI network smoke job byte-compares one tool's output against the
// other's, so the formats must be one piece of code, not two copies.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "service/query.hpp"
#include "service/workloads.hpp"
#include "util/distance.hpp"

namespace msrp::tools {

/// Strict numeric flag parsing for the CLIs: the whole token must be a
/// number, and a junk value is a one-line usage error (exit 2), never an
/// uncaught std::stoul exception aborting the process.
inline std::uint64_t cli_u64(const std::string& value, const char* flag) {
  try {
    std::size_t pos = 0;
    const std::uint64_t parsed = std::stoull(value, &pos);
    if (pos == value.size()) return parsed;
  } catch (...) {
  }
  std::fprintf(stderr, "error: %s: invalid number \"%s\"\n", flag, value.c_str());
  std::exit(2);
}

/// Hex flavour for oracle digests: accepts "9f3a..." or "0x9f3a..." (the
/// tools print digests as %016llx). Same strict-parse exit(2) contract.
inline std::uint64_t cli_hex_u64(const std::string& value, const char* flag) {
  std::string v = value;
  if (v.size() > 2 && v[0] == '0' && (v[1] == 'x' || v[1] == 'X')) v = v.substr(2);
  if (!v.empty() && v.size() <= 16) {
    try {
      std::size_t pos = 0;
      const std::uint64_t parsed = std::stoull(v, &pos, 16);
      if (pos == v.size()) return parsed;
    } catch (...) {
    }
  }
  std::fprintf(stderr, "error: %s: invalid hex digest \"%s\"\n", flag, value.c_str());
  std::exit(2);
}

inline double cli_double(const std::string& value, const char* flag) {
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(value, &pos);
    if (pos == value.size()) return parsed;
  } catch (...) {
  }
  std::fprintf(stderr, "error: %s: invalid number \"%s\"\n", flag, value.c_str());
  std::exit(2);
}

/// Parses queries, one "s t e" per line ('#' starts a comment). Prints a
/// file:line diagnostic and exits on malformed input (CLI contract).
inline std::vector<service::Query> read_batch_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "error: cannot open batch file %s\n", path.c_str());
    std::exit(1);
  }
  std::vector<service::Query> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t s = 0, t = 0, e = 0;
    if (!(ls >> s >> t >> e)) {
      std::fprintf(stderr, "error: %s:%zu: expected \"s t e\"\n", path.c_str(), lineno);
      std::exit(1);
    }
    out.push_back({static_cast<Vertex>(s), static_cast<Vertex>(t),
                   static_cast<EdgeId>(e)});
  }
  return out;
}

/// Writes one "s t e answer" line per query ("inf" for unreachable).
/// Returns false (after printing the error) when the file cannot be
/// opened; answers must be batch-sized.
inline bool write_answer_file(const std::string& path,
                              std::span<const service::Query> batch,
                              std::span<const Dist> answers) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return false;
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    f << batch[i].s << ' ' << batch[i].t << ' ' << batch[i].e << ' ';
    if (answers[i] == kInfDist) {
      f << "inf\n";
    } else {
      f << answers[i] << '\n';
    }
  }
  return true;
}

// ----- v3 workload batch files ---------------------------------------------
// Same contract as the point-query pair above: msrp_serve answers these
// files locally, msrp_client ships them over the wire, and CI byte-compares
// the two outputs — so each workload's read/write format lives here once.

namespace detail {

inline void print_dist(std::ofstream& f, Dist d) {
  if (d == kInfDist) {
    f << "inf";
  } else {
    f << d;
  }
}

}  // namespace detail

/// Parses vitality queries, one "s t k" per line ('#' comments).
inline std::vector<service::VitalityQuery> read_vitality_batch_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "error: cannot open batch file %s\n", path.c_str());
    std::exit(1);
  }
  std::vector<service::VitalityQuery> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t s = 0, t = 0, k = 0;
    if (!(ls >> s >> t >> k)) {
      std::fprintf(stderr, "error: %s:%zu: expected \"s t k\"\n", path.c_str(), lineno);
      std::exit(1);
    }
    out.push_back({static_cast<Vertex>(s), static_cast<Vertex>(t),
                   static_cast<std::uint32_t>(k)});
  }
  return out;
}

/// Parses Vickrey queries, one "s t" per line ('#' comments).
inline std::vector<service::VickreyQuery> read_vickrey_batch_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "error: cannot open batch file %s\n", path.c_str());
    std::exit(1);
  }
  std::vector<service::VickreyQuery> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t s = 0, t = 0;
    if (!(ls >> s >> t)) {
      std::fprintf(stderr, "error: %s:%zu: expected \"s t\"\n", path.c_str(), lineno);
      std::exit(1);
    }
    out.push_back({static_cast<Vertex>(s), static_cast<Vertex>(t)});
  }
  return out;
}

/// Parses k-fail queries, one "s t [e...]" per line — zero to
/// service::kMaxKFailEdges failed edge ids after the endpoints.
inline std::vector<service::KFailQuery> read_kfail_batch_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "error: cannot open batch file %s\n", path.c_str());
    std::exit(1);
  }
  std::vector<service::KFailQuery> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t s = 0, t = 0;
    if (!(ls >> s >> t)) {
      std::fprintf(stderr, "error: %s:%zu: expected \"s t [e...]\"\n", path.c_str(), lineno);
      std::exit(1);
    }
    service::KFailQuery q{static_cast<Vertex>(s), static_cast<Vertex>(t), {}};
    std::uint64_t e = 0;
    while (ls >> e) q.fails.push_back(static_cast<EdgeId>(e));
    if (q.fails.size() > service::kMaxKFailEdges) {
      std::fprintf(stderr, "error: %s:%zu: at most %zu failed edges per query\n",
                   path.c_str(), lineno, service::kMaxKFailEdges);
      std::exit(1);
    }
    out.push_back(std::move(q));
  }
  return out;
}

/// One "s t k base entry..." line per query, entries as
/// "edge:position:replacement" in result order ("inf" for a bridge's
/// replacement, base "inf" when t is unreachable).
inline bool write_vitality_answer_file(const std::string& path,
                                       std::span<const service::VitalityQuery> batch,
                                       std::span<const service::VitalityResult> results) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return false;
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    f << batch[i].s << ' ' << batch[i].t << ' ' << batch[i].k << ' ';
    detail::print_dist(f, results[i].base);
    for (const service::VitalityEntry& e : results[i].edges) {
      f << ' ' << e.edge << ':' << e.position << ':';
      detail::print_dist(f, e.replacement);
    }
    f << '\n';
  }
  return true;
}

/// One "s t base charge..." line per query, charges as "edge:price" in
/// path order ("inf" = bridge monopoly).
inline bool write_vickrey_answer_file(const std::string& path,
                                      std::span<const service::VickreyQuery> batch,
                                      std::span<const service::VickreyResult> results) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return false;
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    f << batch[i].s << ' ' << batch[i].t << ' ';
    detail::print_dist(f, results[i].base);
    for (const service::VickreyCharge& c : results[i].prices) {
      f << ' ' << c.edge << ':';
      detail::print_dist(f, c.price);
    }
    f << '\n';
  }
  return true;
}

/// One "s t F answer" line per query, F as comma-joined edge ids ("-" when
/// empty), answer "inf" for unreachable.
inline bool write_kfail_answer_file(const std::string& path,
                                    std::span<const service::KFailQuery> batch,
                                    std::span<const Dist> answers) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return false;
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    f << batch[i].s << ' ' << batch[i].t << ' ';
    if (batch[i].fails.empty()) {
      f << '-';
    } else {
      for (std::size_t j = 0; j < batch[i].fails.size(); ++j) {
        if (j != 0) f << ',';
        f << batch[i].fails[j];
      }
    }
    f << ' ';
    detail::print_dist(f, answers[i]);
    f << '\n';
  }
  return true;
}

}  // namespace msrp::tools
