// msrp_cli — command-line front end for the library.
//
// Reads an edge list (see graph/io.hpp: "n m" header then "u v" lines, '#'
// comments allowed), solves MSRP for the given sources, and prints either a
// summary, full rows, or specific queries. A solved oracle can be saved as
// a binary snapshot and reloaded later without re-solving.
//
// Usage:
//   msrp_cli <graph-file> --sources 0,5,9 [options]
//   msrp_cli --demo                      (built-in random instance)
//   msrp_cli --load <snapshot>           (answer queries from a snapshot)
//
// Options:
//   --sources a,b,c       source vertices (required unless --demo/--load)
//   --seed N              RNG seed (default 42)
//   --oversample X        sampling multiplier (default 1.0)
//   --exact               deterministic exact mode
//   --bk                  use the Section 8 landmark-table machinery
//   --rows                print every replacement row
//   --query s,t,e         print a single d(s, t, e) (repeatable)
//   --save <path>         write the solved oracle as a binary snapshot
//   --load <path>         load a snapshot instead of solving
//   --stats               print phase timings and structure sizes
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/msrp.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "service/snapshot.hpp"

using namespace msrp;

namespace {

std::vector<std::uint32_t> parse_list(const std::string& s) {
  std::vector<std::uint32_t> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(static_cast<std::uint32_t>(std::stoul(s.substr(pos, next - pos))));
    pos = next + 1;
  }
  return out;
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: msrp_cli <graph-file> --sources a,b,c [--seed N] "
               "[--oversample X]\n"
               "                [--exact] [--bk] [--rows] [--query s,t,e]... "
               "[--save <path>] [--stats]\n"
               "       msrp_cli --demo\n"
               "       msrp_cli --load <snapshot> [--rows] [--query s,t,e]...\n");
  std::exit(2);
}

/// Rejects a query with ids outside the instance instead of letting the
/// lookup throw (or, in release builds, index out of bounds).
bool validate_query(const std::vector<std::uint32_t>& q, const std::vector<Vertex>& sources,
                    Vertex n, EdgeId m) {
  bool is_source = false;
  for (const Vertex s : sources) is_source |= (s == q[0]);
  if (!is_source) {
    std::fprintf(stderr, "error: query source %u is not one of the sources\n", q[0]);
    return false;
  }
  if (q[1] >= n) {
    std::fprintf(stderr, "error: query target %u out of range (n=%u)\n", q[1], n);
    return false;
  }
  if (q[2] >= m) {
    std::fprintf(stderr, "error: query edge %u out of range (m=%u)\n", q[2], m);
    return false;
  }
  return true;
}

void print_query(std::uint32_t s, std::uint32_t t, std::uint32_t e, Dist d) {
  if (d == kInfDist) {
    std::printf("d(%u, %u, e%u) = inf\n", s, t, e);
  } else {
    std::printf("d(%u, %u, e%u) = %u\n", s, t, e, d);
  }
}

void print_row(Vertex s, Vertex t, Dist shortest, std::span<const Dist> row) {
  if (row.empty()) return;
  std::printf("%u %u %u :", s, t, shortest);
  for (const Dist d : row) {
    if (d == kInfDist) {
      std::printf(" inf");
    } else {
      std::printf(" %u", d);
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string graph_path, save_path, load_path;
  std::vector<Vertex> sources;
  std::vector<std::vector<std::uint32_t>> queries;
  Config cfg;
  cfg.seed = 42;
  bool print_rows = false, print_stats = false, demo = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--sources") {
      for (const auto v : parse_list(next())) sources.push_back(v);
    } else if (arg == "--seed") {
      cfg.seed = std::stoull(next());
    } else if (arg == "--oversample") {
      cfg.oversample = std::stod(next());
    } else if (arg == "--exact") {
      cfg.exact = true;
    } else if (arg == "--bk") {
      cfg.landmark_rp = LandmarkRpMethod::kBkAuxGraphs;
    } else if (arg == "--rows") {
      print_rows = true;
    } else if (arg == "--stats") {
      print_stats = true;
    } else if (arg == "--query") {
      const auto q = parse_list(next());
      if (q.size() != 3) usage();
      queries.push_back(q);
    } else if (arg == "--save") {
      save_path = next();
    } else if (arg == "--load") {
      load_path = next();
    } else if (arg == "--demo") {
      demo = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else {
      graph_path = arg;
    }
  }

  // ------------------------------------------------- snapshot-serving mode --
  if (!load_path.empty()) {
    if (demo || !graph_path.empty() || !save_path.empty()) usage();
    try {
      const service::Snapshot snap = service::Snapshot::load(load_path);
      std::printf("loaded: n=%u m=%u sigma=%u\n", snap.num_vertices(), snap.num_edges(),
                  snap.num_sources());
      for (const auto& q : queries) {
        if (!validate_query(q, snap.sources(), snap.num_vertices(), snap.num_edges()))
          return 1;
        print_query(q[0], q[1], q[2], snap.avoiding(q[0], q[1], q[2]));
      }
      if (print_rows) {
        for (const Vertex s : snap.sources()) {
          for (Vertex t = 0; t < snap.num_vertices(); ++t) {
            print_row(s, t, snap.shortest(s, t), snap.row(s, t));
          }
        }
      }
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "error: %s\n", ex.what());
      return 1;
    }
    return 0;
  }

  // ------------------------------------------------------------ solve mode --
  Graph g(0);
  if (demo) {
    Rng rng(cfg.seed);
    g = gen::connected_avg_degree(200, 6.0, rng);
    if (sources.empty()) sources = {0, 50, 100};
    std::printf("# demo instance: n=%u m=%u sources=0,50,100\n", g.num_vertices(),
                g.num_edges());
  } else {
    if (graph_path.empty() || sources.empty()) usage();
    try {
      g = io::load_edge_list(graph_path);
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "error loading %s: %s\n", graph_path.c_str(), ex.what());
      return 1;
    }
  }

  for (const Vertex s : sources) {
    if (s >= g.num_vertices()) {
      std::fprintf(stderr, "error: source %u out of range (n=%u)\n", s, g.num_vertices());
      return 1;
    }
  }
  for (const auto& q : queries) {
    if (!validate_query(q, sources, g.num_vertices(), g.num_edges())) return 1;
  }

  MsrpResult res = [&] {
    try {
      return solve_msrp(g, sources, cfg);
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "error: %s\n", ex.what());
      std::exit(1);
    }
  }();

  std::printf("solved: n=%u m=%u sigma=%zu landmarks=%zu\n", g.num_vertices(),
              g.num_edges(), sources.size(), res.stats().num_landmarks);

  if (!save_path.empty()) {
    try {
      const service::Snapshot snap = service::Snapshot::capture(res);
      snap.save(save_path);
      std::printf("saved snapshot to %s (%zu bytes)\n", save_path.c_str(),
                  snap.encoded_size());
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "error saving snapshot: %s\n", ex.what());
      return 1;
    }
  }

  for (const auto& q : queries) {
    print_query(q[0], q[1], q[2], res.avoiding(q[0], q[1], q[2]));
  }

  if (print_rows) {
    for (const Vertex s : sources) {
      for (Vertex t = 0; t < g.num_vertices(); ++t) {
        print_row(s, t, res.shortest(s, t), res.row(s, t));
      }
    }
  }

  if (print_stats) {
    const auto& st = res.stats();
    std::printf("landmarks=%zu centers=%zu trees=%zu near_small_arcs=%zu\n",
                st.num_landmarks, st.num_centers, st.num_trees, st.near_small_aux_arcs);
    for (const auto& [phase, secs] : st.phase_seconds) {
      std::printf("phase %-24s %8.3f ms\n", phase.c_str(), secs * 1e3);
    }
  }
  return 0;
}
