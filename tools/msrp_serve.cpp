// msrp_serve — build-once/serve-many front end for the service layer.
//
// Builds an oracle (solving MSRP) or loads a binary snapshot, then answers
// batched d(s, t, e) queries on a thread pool and reports throughput.
//
// Usage:
//   msrp_serve --build <graph-file> --sources a,b,c [options]
//   msrp_serve --demo [options]
//   msrp_serve --load-snapshot <path> [options]
//
// Oracle options:
//   --sources a,b,c        source vertices (required with --build)
//   --seed N               solver RNG seed (default 42)
//   --oversample X         sampling multiplier
//   --exact                deterministic exact mode
//   --bk                   Section 8 landmark-table machinery
//   --save-snapshot <path> persist the oracle after building
//   --format v1|v2         snapshot format for --save-snapshot (default v2)
//   --mmap                 serve --load-snapshot v2 files zero-copy from a
//                          memory mapping (skips the cells checksum)
//
// Serving options:
//   --batch-file <path>    queries, one "s t e" per line ('#' comments)
//   --workload <kind>      answer a typed workload batch instead of point
//                          queries: "vitality" reads "s t k" lines and
//                          writes top-k most-vital edges, "vickrey" reads
//                          "s t" and writes per-edge Vickrey prices,
//                          "kfail" reads "s t [e...]" and writes d(s, t)
//                          avoiding the listed edges (at most 2; two-edge
//                          sets need a --build/--demo oracle — a bare
//                          snapshot has no graph to BFS). Output lines are
//                          byte-identical to msrp_client --workload over
//                          TCP, which CI compares.
//   --random-queries N     generate N uniform random queries instead
//   --threads N            worker threads (default: hardware concurrency)
//   --repeat K             run the batch K times for throughput (default 1)
//   --async                use submit_batch() futures; reports submit
//                          latency separately from completion
//   --shards N             serve through N worker processes: the oracle is
//                          partitioned by source into N shared-memory v2
//                          segments, each served zero-copy by a forked
//                          msrp_serve worker; answers are bit-identical to
//                          the in-process path (see docs/OPERATIONS.md)
//   --shard-spin N         idle-poll rounds before the shard router sleeps
//                          (default 64, or MSRP_SHARD_SPIN_ROUNDS)
//   --shard-sleep-us N     router idle sleep in microseconds; 0 = yield
//                          (default 20, or MSRP_SHARD_SLEEP_US)
//   --out <path>           write "s t e answer" lines for the batch
//
// Network serving (docs/NETWORK_PROTOCOL.md):
//   --listen <port>        serve the oracle over TCP until SIGINT/SIGTERM
//                          (0 = pick an ephemeral port; the bound port is
//                          printed). Composes with every oracle mode —
//                          --build, --load-snapshot [--mmap], --shards N.
//   --listen-addr <ip>     bind address (default 127.0.0.1)
//   --idle-timeout-ms N    evict connections with no traffic for N ms
//                          (0 = never, the default)
//   --stall-timeout-ms N   evict connections whose replies make no write
//                          progress for N ms — a stuck peer cannot pin
//                          reply buffers forever (0 = never, the default)
//   --loops N              event-loop threads; each gets its own
//                          SO_REUSEPORT listener on the shared port (or
//                          round-robin accept hand-off where REUSEPORT is
//                          unavailable). Default 1.
//   --pin-workers          pin event-loop threads and shard worker
//                          processes to CPUs (thread/worker k -> CPU k mod
//                          hardware_concurrency); Linux-only
//   --registry             multi-tenant mode: clients register graphs over
//                          the wire (protocol v2) and target them by
//                          digest. Works with or without a local oracle
//                          mode — `--registry --listen 0` alone starts an
//                          empty server that clients populate.
//   --max-tenants N        resident-oracle cap for --registry (default 16)
//   --registry-bytes N     summed-footprint byte budget for --registry
//                          (0 = unlimited)
//   --failed-ttl-ms N      how long a failed registration stays listable
//                          (with its reason) before its slot is reaped
//                          (default 60000; 0 = release immediately)
//   --build-timeout-ms N   fail a registration that has not built within
//                          N ms instead of letting it wedge (0 = never,
//                          the default)
//   --metrics-addr <ip:port>  also serve GET /metrics (Prometheus text
//                          exposition), /healthz, and /traces over HTTP on
//                          its own listener (docs/OBSERVABILITY.md). Port 0
//                          picks an ephemeral port; the bound port is
//                          printed as "metrics on <ip>:<port>".
//   --trace-sample-n N     sample every Nth query into the bounded trace
//                          ring dumped at /traces (0 = tracing off, the
//                          default)
//   --cache-ttl-ms N       oracle cache TTL (0 = never expire)
//   --refresh-ahead X      rebuild cached oracles at X * TTL (0 < X < 1)
//                          in the background so a warmed key never pays a
//                          cold build at the TTL boundary
//
// Internal:
//   --shard-worker <base>:<k>   run as shard worker k of the supervisor
//                               that owns shm prefix <base>; never invoked
//                               by hand (the router passes it to exec)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "batch_io.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "net/server.hpp"
#include "obs/exposition.hpp"
#include "obs/http_metrics.hpp"
#include "obs/trace.hpp"
#include "registry/oracle_registry.hpp"
#include "service/query_gen.hpp"
#include "service/query_service.hpp"
#include "service/shard_process.hpp"
#include "service/shard_router.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace msrp;

namespace {

std::vector<std::uint32_t> parse_list(const std::string& s) {
  std::vector<std::uint32_t> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(static_cast<std::uint32_t>(std::stoul(s.substr(pos, next - pos))));
    pos = next + 1;
  }
  return out;
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: msrp_serve --build <graph-file> --sources a,b,c [options]\n"
               "       msrp_serve --demo [options]\n"
               "       msrp_serve --load-snapshot <path> [options]\n"
               "options: [--seed N] [--oversample X] [--exact] [--bk]\n"
               "         [--save-snapshot <path>] [--format v1|v2] [--mmap]\n"
               "         [--batch-file <path> | --random-queries N]\n"
               "         [--workload vitality|vickrey|kfail]\n"
               "         [--threads N] [--repeat K] [--async] [--shards N]\n"
               "         [--shard-spin N] [--shard-sleep-us N]\n"
               "         [--listen <port>] [--listen-addr <ip>] [--loops N]\n"
               "         [--pin-workers] [--idle-timeout-ms N] [--stall-timeout-ms N]\n"
               "         [--metrics-addr ip:port] [--trace-sample-n N]\n"
               "         [--registry] [--max-tenants N] [--registry-bytes N]\n"
               "         [--failed-ttl-ms N] [--build-timeout-ms N]\n"
               "         [--cache-ttl-ms N] [--refresh-ahead X]\n"
               "         [--out <path>]\n"
               "       msrp_serve --registry --listen <port>   (empty multi-tenant server)\n");
  std::exit(2);
}

std::vector<service::Query> random_batch(const service::Snapshot& oracle, std::size_t count,
                                         std::uint64_t seed) {
  Rng rng(seed);
  return service::random_query_batch(oracle.sources(), oracle.num_vertices(),
                                     oracle.num_edges(), count, rng);
}

// Random typed workload batches for --workload --random-queries: same
// source/vertex sampling as the point generator, with the workload's own
// extra dimension (k, or a failed-edge set) drawn alongside.
std::vector<service::VitalityQuery> random_vitality_batch(const service::Snapshot& oracle,
                                                          std::size_t count,
                                                          std::uint64_t seed) {
  Rng rng(seed);
  const auto sources = oracle.sources();
  std::vector<service::VitalityQuery> out(count);
  for (auto& q : out) {
    q.s = sources[rng.next_below(sources.size())];
    q.t = static_cast<Vertex>(rng.next_below(oracle.num_vertices()));
    q.k = 1 + static_cast<std::uint32_t>(rng.next_below(8));
  }
  return out;
}

std::vector<service::VickreyQuery> random_vickrey_batch(const service::Snapshot& oracle,
                                                        std::size_t count,
                                                        std::uint64_t seed) {
  Rng rng(seed);
  const auto sources = oracle.sources();
  std::vector<service::VickreyQuery> out(count);
  for (auto& q : out) {
    q.s = sources[rng.next_below(sources.size())];
    q.t = static_cast<Vertex>(rng.next_below(oracle.num_vertices()));
  }
  return out;
}

std::vector<service::KFailQuery> random_kfail_batch(const service::Snapshot& oracle,
                                                    std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  const auto sources = oracle.sources();
  const std::uint32_t m = oracle.num_edges();
  std::vector<service::KFailQuery> out(count);
  for (auto& q : out) {
    q.s = sources[rng.next_below(sources.size())];
    q.t = static_cast<Vertex>(rng.next_below(oracle.num_vertices()));
    const std::size_t k = m == 0 ? 0 : rng.next_below(service::kMaxKFailEdges + 1);
    while (q.fails.size() < k) {
      const EdgeId e = static_cast<EdgeId>(rng.next_below(m));
      if (std::find(q.fails.begin(), q.fails.end(), e) == q.fails.end()) q.fails.push_back(e);
    }
  }
  return out;
}

// --listen shutdown flag; set by the SIGINT/SIGTERM handler (the only
// async-signal-safe thing to do — the actual graceful shutdown runs on the
// main thread's wait loop).
volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

/// Runs the TCP front end until a signal arrives, then drains and reports.
int serve_network(service::QueryService& svc, std::shared_ptr<const service::Snapshot> oracle,
                  const std::string& addr, std::uint16_t port, unsigned loops,
                  bool pin_loops, bool use_registry, std::size_t max_tenants,
                  std::size_t registry_bytes, std::uint64_t idle_timeout_ms,
                  std::uint64_t stall_timeout_ms, std::uint64_t failed_ttl_ms,
                  std::uint64_t build_timeout_ms, const std::string& metrics_addr,
                  std::uint64_t trace_sample_n) {
  if (!net::Server::supported()) {
    std::fprintf(stderr, "error: --listen needs epoll (Linux)\n");
    return 1;
  }
  // Declared before the server so it outlives it: in-flight registrations
  // drain in ~Server, then the registry tears down.
  std::unique_ptr<registry::OracleRegistry> reg;
  if (use_registry) {
    registry::RegistryOptions ropts;
    ropts.max_tenants = max_tenants;
    ropts.max_bytes = registry_bytes;
    ropts.failed_ttl = std::chrono::milliseconds(failed_ttl_ms);
    ropts.build_timeout = std::chrono::milliseconds(build_timeout_ms);
    reg = std::make_unique<registry::OracleRegistry>(svc, ropts);
  }
  // Observability plumbing. The trace ring and HTTP listener live on this
  // frame: declared before the server (so stage handlers can publish spans
  // for the server's whole lifetime) and torn down after it.
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::instance();
  obs::TraceRing trace_ring(static_cast<std::uint32_t>(trace_sample_n));
  obs::MetricsRegistry::CollectorHandle reg_collector;
  if (use_registry) {
    registry::OracleRegistry* r = reg.get();
    reg_collector = metrics.register_collector([r](obs::MetricsSnapshot& out) {
      out.gauges.push_back(
          {"registry.tenants_resident", static_cast<std::int64_t>(r->tenant_count())});
    });
  }
  std::unique_ptr<obs::MetricsHttpServer> http;
  if (!metrics_addr.empty()) {
    if (!obs::MetricsHttpServer::supported()) {
      std::fprintf(stderr, "error: --metrics-addr needs epoll (Linux)\n");
      return 1;
    }
    const std::size_t colon = metrics_addr.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      std::fprintf(stderr, "error: --metrics-addr wants ip:port, got '%s'\n",
                   metrics_addr.c_str());
      return 2;
    }
    const std::uint64_t mport =
        tools::cli_u64(metrics_addr.substr(colon + 1), "--metrics-addr");
    if (mport > 65535) {
      std::fprintf(stderr, "error: --metrics-addr port %llu out of range (0-65535)\n",
                   static_cast<unsigned long long>(mport));
      return 2;
    }
    obs::MetricsHttpServer::Options mopts;
    mopts.host = metrics_addr.substr(0, colon);
    mopts.port = static_cast<std::uint16_t>(mport);
    http = std::make_unique<obs::MetricsHttpServer>(metrics, &trace_ring, mopts);
  }
  net::ServerOptions sopts;
  sopts.bind_addr = addr;
  sopts.port = port;
  sopts.loops = loops;
  sopts.pin_loops = pin_loops;
  sopts.idle_timeout_ms = idle_timeout_ms;
  sopts.write_stall_timeout_ms = stall_timeout_ms;
  sopts.trace_ring = &trace_ring;
  net::Server server(svc, std::move(oracle), reg.get(), sopts);
  if (loops > 1) std::printf("event loops: %u\n", loops);
  if (use_registry) {
    std::printf("registry enabled: max %zu tenants%s\n", max_tenants,
                registry_bytes ? (", " + std::to_string(registry_bytes) + " bytes").c_str()
                               : "");
  }
  std::printf("listening on %s:%u\n", addr.c_str(), server.port());
  if (http != nullptr) {
    std::printf("metrics on %s:%u\n", http->host().c_str(), http->port());
  }
  std::fflush(stdout);  // startup scripts parse these lines for the ports

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  // The loop thread must never terminate the process: an escaping
  // exception (epoll failure under fd pressure, ENOMEM) is recorded and
  // treated like a stop signal instead.
  std::atomic<bool> loop_done{false};
  std::string loop_error;
  std::thread loop([&server, &loop_done, &loop_error] {
    try {
      server.run();
    } catch (const std::exception& ex) {
      loop_error = ex.what();
    }
    loop_done.store(true, std::memory_order_release);
  });
  // Periodic telemetry goes to stderr so stdout stays parseable; the
  // lines come from the registry snapshot — the same state /metrics and
  // the wire STATS opcode serve, one formatting path for all three.
  unsigned ticks = 0;
  constexpr unsigned kStatsEveryTicks = 200;  // 200 x 50 ms = 10 s
  while (g_stop == 0 && !loop_done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (++ticks == kStatsEveryTicks) {
      ticks = 0;
      std::fputs(obs::render_stats_lines(metrics.snapshot()).c_str(), stderr);
    }
  }
  std::printf("shutting down (draining in-flight batches)\n");
  server.shutdown();
  loop.join();
  if (!loop_error.empty()) {
    std::fprintf(stderr, "error: server loop failed: %s\n", loop_error.c_str());
    return 1;
  }
  // Final telemetry: everything the old per-subsystem printf blocks
  // reported (and more) now renders from the registry in one place.
  std::fputs(obs::render_stats_lines(metrics.snapshot()).c_str(), stderr);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A peer closing its socket mid-reply must surface as EPIPE from the
  // write, not kill the process. Applies to every mode (server loops,
  // shard supervisors, workers) — set before anything can write a socket.
#ifndef _WIN32
  std::signal(SIGPIPE, SIG_IGN);
#endif
  // Shard-worker mode first: the supervisor execs this binary with only the
  // worker spec, and the worker must never parse (or require) serving flags.
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--shard-worker") {
      if (i + 1 >= argc) usage();
      return service::shard_worker_main(argv[i + 1]);
    }
  }

  std::string graph_path, snapshot_path, save_path, batch_path, out_path, workload;
  std::vector<Vertex> sources;
  Config cfg;
  cfg.seed = 42;
  bool demo = false;
  std::size_t random_queries = 0;
  unsigned threads = 0;
  std::size_t repeat = 1;
  unsigned shards = 0;
  bool use_mmap = false;
  bool use_async = false;
  bool listen = false;
  unsigned listen_port = 0;
  std::string listen_addr = "127.0.0.1";
  unsigned loops = 1;
  bool pin_workers = false;
  bool use_registry = false;
  std::size_t max_tenants = 16;
  std::size_t registry_bytes = 0;
  std::uint64_t idle_timeout_ms = 0;
  std::uint64_t stall_timeout_ms = 0;
  std::uint64_t failed_ttl_ms = 60000;
  std::uint64_t build_timeout_ms = 0;
  std::uint64_t cache_ttl_ms = 0;
  std::string metrics_addr;
  std::uint64_t trace_sample_n = 0;
  double refresh_ahead = 0.0;
  service::ShardBackoff backoff = service::ShardBackoff::from_env();
  service::SnapshotFormat save_format = service::SnapshotFormat::kV2;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--build") {
      graph_path = next();
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--load-snapshot") {
      snapshot_path = next();
    } else if (arg == "--sources") {
      for (const auto v : parse_list(next())) sources.push_back(v);
    } else if (arg == "--seed") {
      cfg.seed = tools::cli_u64(next(), "--seed");
    } else if (arg == "--oversample") {
      cfg.oversample = tools::cli_double(next(), "--oversample");
    } else if (arg == "--exact") {
      cfg.exact = true;
    } else if (arg == "--bk") {
      cfg.landmark_rp = LandmarkRpMethod::kBkAuxGraphs;
    } else if (arg == "--save-snapshot") {
      save_path = next();
    } else if (arg == "--format") {
      const std::string fmt = next();
      if (fmt == "v1") {
        save_format = service::SnapshotFormat::kV1;
      } else if (fmt == "v2") {
        save_format = service::SnapshotFormat::kV2;
      } else {
        usage();
      }
    } else if (arg == "--mmap") {
      use_mmap = true;
    } else if (arg == "--async") {
      use_async = true;
    } else if (arg == "--batch-file") {
      batch_path = next();
    } else if (arg == "--workload") {
      workload = next();
      if (workload != "vitality" && workload != "vickrey" && workload != "kfail") usage();
    } else if (arg == "--random-queries") {
      random_queries = tools::cli_u64(next(), "--random-queries");
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(tools::cli_u64(next(), "--threads"));
    } else if (arg == "--shards") {
      shards = static_cast<unsigned>(tools::cli_u64(next(), "--shards"));
    } else if (arg == "--shard-spin") {
      backoff.spin_rounds = static_cast<std::uint32_t>(tools::cli_u64(next(), "--shard-spin"));
    } else if (arg == "--shard-sleep-us") {
      backoff.sleep_us = static_cast<std::uint32_t>(tools::cli_u64(next(), "--shard-sleep-us"));
    } else if (arg == "--listen") {
      listen = true;
      const std::uint64_t port = tools::cli_u64(next(), "--listen");
      listen_port = static_cast<unsigned>(port);
      if (port > 65535) {
        std::fprintf(stderr, "error: --listen port %llu out of range (0-65535)\n",
                     static_cast<unsigned long long>(port));
        return 2;
      }
    } else if (arg == "--listen-addr") {
      listen_addr = next();
    } else if (arg == "--loops") {
      loops = static_cast<unsigned>(tools::cli_u64(next(), "--loops"));
      if (loops == 0) loops = 1;
    } else if (arg == "--pin-workers") {
      pin_workers = true;
    } else if (arg == "--registry") {
      use_registry = true;
    } else if (arg == "--max-tenants") {
      max_tenants = tools::cli_u64(next(), "--max-tenants");
      if (max_tenants == 0) {
        std::fprintf(stderr, "error: --max-tenants must be >= 1\n");
        return 2;
      }
    } else if (arg == "--registry-bytes") {
      registry_bytes = tools::cli_u64(next(), "--registry-bytes");
    } else if (arg == "--idle-timeout-ms") {
      idle_timeout_ms = tools::cli_u64(next(), "--idle-timeout-ms");
    } else if (arg == "--stall-timeout-ms") {
      stall_timeout_ms = tools::cli_u64(next(), "--stall-timeout-ms");
    } else if (arg == "--failed-ttl-ms") {
      failed_ttl_ms = tools::cli_u64(next(), "--failed-ttl-ms");
    } else if (arg == "--build-timeout-ms") {
      build_timeout_ms = tools::cli_u64(next(), "--build-timeout-ms");
    } else if (arg == "--metrics-addr") {
      metrics_addr = next();
    } else if (arg == "--trace-sample-n") {
      trace_sample_n = tools::cli_u64(next(), "--trace-sample-n");
    } else if (arg == "--cache-ttl-ms") {
      cache_ttl_ms = tools::cli_u64(next(), "--cache-ttl-ms");
    } else if (arg == "--refresh-ahead") {
      refresh_ahead = tools::cli_double(next(), "--refresh-ahead");
      if (refresh_ahead <= 0.0 || refresh_ahead >= 1.0) {
        std::fprintf(stderr, "error: --refresh-ahead must be in (0, 1)\n");
        return 2;
      }
    } else if (arg == "--repeat") {
      repeat = tools::cli_u64(next(), "--repeat");
      if (repeat == 0) repeat = 1;
    } else if (arg == "--out") {
      out_path = next();
    } else {
      usage();
    }
  }

  const int modes = int(!graph_path.empty()) + int(demo) + int(!snapshot_path.empty());
  // A registry listener may start empty (clients register graphs over the
  // wire); every other shape needs exactly one oracle mode.
  if (modes != 1 && !(modes == 0 && use_registry && listen)) usage();
  if ((!metrics_addr.empty() || trace_sample_n != 0) && !listen) {
    std::fprintf(stderr, "error: --metrics-addr/--trace-sample-n need --listen\n");
    return 2;
  }
  if (refresh_ahead > 0.0 && cache_ttl_ms == 0) {
    std::fprintf(stderr, "error: --refresh-ahead needs a nonzero --cache-ttl-ms\n");
    return 2;
  }

  try {
    service::QueryService::Options svc_opts;
    svc_opts.threads = threads;
    svc_opts.cache_capacity = 4;
    if (use_registry) svc_opts.cache_capacity = std::max<std::size_t>(max_tenants, 4);
    svc_opts.cache_entry_ttl = std::chrono::milliseconds(cache_ttl_ms);
    svc_opts.cache_refresh_ahead = refresh_ahead;
    if (shards >= 1) {
      if (!service::ShardRouter::supported()) {
        std::fprintf(stderr, "error: --shards needs POSIX fork + shared memory\n");
        return 1;
      }
      svc_opts.shards = shards;
      svc_opts.shard_worker_argv = {argv[0]};  // workers exec this binary
      svc_opts.shard_backoff = backoff;
      svc_opts.pin_shard_workers = pin_workers;
    }
    service::QueryService svc(svc_opts);
    std::shared_ptr<const service::Snapshot> oracle;

    Timer build_timer;
    if (modes == 0) {
      // Registry-only listener: no local oracle; clients register graphs
      // over the wire and target them by digest.
    } else if (!snapshot_path.empty()) {
      // --mmap is the zero-copy serving path: the v2 cells payload stays on
      // disk and pages in on demand, so skip its checksum at load time.
      oracle = svc.load(snapshot_path,
                        {.use_mmap = use_mmap, .verify_cells = !use_mmap});
      std::printf("loaded snapshot %s in %.3f ms (%zu bytes%s)\n", snapshot_path.c_str(),
                  build_timer.millis(), oracle->encoded_size(),
                  oracle->is_mapped() ? ", mmap" : "");
    } else {
      Graph g(0);
      if (demo) {
        Rng rng(cfg.seed);
        g = gen::connected_avg_degree(200, 6.0, rng);
        if (sources.empty()) sources = {0, 50, 100};
        std::printf("# demo instance: n=%u m=%u\n", g.num_vertices(), g.num_edges());
      } else {
        g = io::load_edge_list(graph_path);
        if (sources.empty()) usage();
      }
      oracle = svc.build(g, sources, cfg);
      std::printf("built oracle in %.1f ms\n", build_timer.millis());
    }
    if (oracle != nullptr) {
      std::printf("oracle: n=%u m=%u sigma=%u threads=%u\n", oracle->num_vertices(),
                  oracle->num_edges(), oracle->num_sources(), svc.num_threads());
    }

    if (!save_path.empty() && oracle != nullptr) {
      Timer t;
      oracle->save(save_path, save_format);
      std::printf("saved %s snapshot to %s in %.1f ms (%zu bytes)\n",
                  save_format == service::SnapshotFormat::kV1 ? "v1" : "v2",
                  save_path.c_str(), t.millis(), oracle->encoded_size());
    }

    if (listen) {
      // TCP front end over whatever oracle mode was selected above
      // (in-process build, mmap snapshot, sharded workers alike).
      return serve_network(svc, oracle, listen_addr,
                           static_cast<std::uint16_t>(listen_port), loops, pin_workers,
                           use_registry, max_tenants, registry_bytes, idle_timeout_ms,
                           stall_timeout_ms, failed_ttl_ms, build_timeout_ms,
                           metrics_addr, trace_sample_n);
    }

    if (!workload.empty()) {
      // Typed workload batches run the synchronous service entry points
      // (shard-aware: their replacement lookups route through the shard
      // workers exactly like point queries).
      if (oracle == nullptr) {
        std::fprintf(stderr, "error: --workload needs a local oracle mode\n");
        return 2;
      }
      if (use_async) {
        std::fprintf(stderr, "error: --workload runs the synchronous path (drop --async)\n");
        return 2;
      }
      std::size_t answered = 0;
      Timer serve_timer;
      if (workload == "vitality") {
        std::vector<service::VitalityQuery> wq;
        if (!batch_path.empty()) {
          wq = tools::read_vitality_batch_file(batch_path);
        } else if (random_queries > 0) {
          wq = random_vitality_batch(*oracle, random_queries, cfg.seed);
        }
        if (wq.empty()) return 0;
        std::vector<service::VitalityResult> results;
        for (std::size_t r = 0; r < repeat; ++r) results = svc.vitality_batch(*oracle, wq);
        answered = wq.size();
        if (!out_path.empty() &&
            !tools::write_vitality_answer_file(out_path, wq, results)) {
          return 1;
        }
      } else if (workload == "vickrey") {
        std::vector<service::VickreyQuery> wq;
        if (!batch_path.empty()) {
          wq = tools::read_vickrey_batch_file(batch_path);
        } else if (random_queries > 0) {
          wq = random_vickrey_batch(*oracle, random_queries, cfg.seed);
        }
        if (wq.empty()) return 0;
        std::vector<service::VickreyResult> results;
        for (std::size_t r = 0; r < repeat; ++r) results = svc.vickrey_batch(*oracle, wq);
        answered = wq.size();
        if (!out_path.empty() &&
            !tools::write_vickrey_answer_file(out_path, wq, results)) {
          return 1;
        }
      } else {  // kfail
        std::vector<service::KFailQuery> wq;
        if (!batch_path.empty()) {
          wq = tools::read_kfail_batch_file(batch_path);
        } else if (random_queries > 0) {
          wq = random_kfail_batch(*oracle, random_queries, cfg.seed);
        }
        if (wq.empty()) return 0;
        std::vector<Dist> answers;
        for (std::size_t r = 0; r < repeat; ++r) answers = svc.kfail_batch(*oracle, wq);
        answered = wq.size();
        if (!out_path.empty() && !tools::write_kfail_answer_file(out_path, wq, answers)) {
          return 1;
        }
      }
      const double secs = serve_timer.seconds();
      const double total = static_cast<double>(answered) * static_cast<double>(repeat);
      std::printf("answered %zu %s queries x%zu in %.1f ms  (%.0f queries/sec)\n", answered,
                  workload.c_str(), repeat, secs * 1e3, secs > 0 ? total / secs : 0.0);
      if (!out_path.empty()) std::printf("wrote answers to %s\n", out_path.c_str());
      return 0;
    }

    std::vector<service::Query> batch;
    if (!batch_path.empty()) {
      batch = tools::read_batch_file(batch_path);
    } else if (random_queries > 0) {
      batch = random_batch(*oracle, random_queries, cfg.seed);
    }
    if (batch.empty()) return 0;

    std::vector<Dist> answers;
    Timer serve_timer;
    if (use_async) {
      // Submit every repeat up front, then drain: batches overlap on the
      // pool instead of running lockstep.
      double submit_ms = 0.0;
      std::vector<std::future<service::BatchResult>> futures;
      futures.reserve(repeat);
      {
        Timer submit_timer;
        for (std::size_t r = 0; r < repeat; ++r) {
          futures.push_back(svc.submit_batch(oracle, batch));
        }
        submit_ms = submit_timer.millis();
      }
      for (auto& fut : futures) answers = std::move(fut.get().answers);
      std::printf("submitted %zu async batches in %.3f ms\n", repeat, submit_ms);
    } else {
      for (std::size_t r = 0; r < repeat; ++r) {
        answers = svc.query_batch(*oracle, batch);
      }
    }
    const double secs = serve_timer.seconds();
    const double total = static_cast<double>(batch.size()) * static_cast<double>(repeat);
    std::printf("answered %zu queries x%zu in %.1f ms  (%.0f queries/sec%s)\n", batch.size(),
                repeat, secs * 1e3, secs > 0 ? total / secs : 0.0,
                use_async ? ", async" : "");
    if (shards >= 1) {
      // Router/cache/worker telemetry, rendered from the registry (the
      // same series --listen serves over /metrics and STATS).
      std::fputs(
          obs::render_stats_lines(obs::MetricsRegistry::instance().snapshot()).c_str(),
          stderr);
    }

    if (!out_path.empty()) {
      if (!tools::write_answer_file(out_path, batch, answers)) return 1;
      std::printf("wrote answers to %s\n", out_path.c_str());
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
  return 0;
}
