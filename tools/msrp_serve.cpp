// msrp_serve — build-once/serve-many front end for the service layer.
//
// Builds an oracle (solving MSRP) or loads a binary snapshot, then answers
// batched d(s, t, e) queries on a thread pool and reports throughput.
//
// Usage:
//   msrp_serve --build <graph-file> --sources a,b,c [options]
//   msrp_serve --demo [options]
//   msrp_serve --load-snapshot <path> [options]
//
// Oracle options:
//   --sources a,b,c        source vertices (required with --build)
//   --seed N               solver RNG seed (default 42)
//   --oversample X         sampling multiplier
//   --exact                deterministic exact mode
//   --bk                   Section 8 landmark-table machinery
//   --save-snapshot <path> persist the oracle after building
//   --format v1|v2         snapshot format for --save-snapshot (default v2)
//   --mmap                 serve --load-snapshot v2 files zero-copy from a
//                          memory mapping (skips the cells checksum)
//
// Serving options:
//   --batch-file <path>    queries, one "s t e" per line ('#' comments)
//   --random-queries N     generate N uniform random queries instead
//   --threads N            worker threads (default: hardware concurrency)
//   --repeat K             run the batch K times for throughput (default 1)
//   --async                use submit_batch() futures; reports submit
//                          latency separately from completion
//   --shards N             serve through N worker processes: the oracle is
//                          partitioned by source into N shared-memory v2
//                          segments, each served zero-copy by a forked
//                          msrp_serve worker; answers are bit-identical to
//                          the in-process path (see docs/OPERATIONS.md)
//   --out <path>           write "s t e answer" lines for the batch
//
// Internal:
//   --shard-worker <base>:<k>   run as shard worker k of the supervisor
//                               that owns shm prefix <base>; never invoked
//                               by hand (the router passes it to exec)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "service/query_service.hpp"
#include "service/shard_process.hpp"
#include "service/shard_router.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace msrp;

namespace {

std::vector<std::uint32_t> parse_list(const std::string& s) {
  std::vector<std::uint32_t> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(static_cast<std::uint32_t>(std::stoul(s.substr(pos, next - pos))));
    pos = next + 1;
  }
  return out;
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: msrp_serve --build <graph-file> --sources a,b,c [options]\n"
               "       msrp_serve --demo [options]\n"
               "       msrp_serve --load-snapshot <path> [options]\n"
               "options: [--seed N] [--oversample X] [--exact] [--bk]\n"
               "         [--save-snapshot <path>] [--format v1|v2] [--mmap]\n"
               "         [--batch-file <path> | --random-queries N]\n"
               "         [--threads N] [--repeat K] [--async] [--shards N]\n"
               "         [--out <path>]\n");
  std::exit(2);
}

std::vector<service::Query> read_batch_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "error: cannot open batch file %s\n", path.c_str());
    std::exit(1);
  }
  std::vector<service::Query> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t s = 0, t = 0, e = 0;
    if (!(ls >> s >> t >> e)) {
      std::fprintf(stderr, "error: %s:%zu: expected \"s t e\"\n", path.c_str(), lineno);
      std::exit(1);
    }
    out.push_back({static_cast<Vertex>(s), static_cast<Vertex>(t),
                   static_cast<EdgeId>(e)});
  }
  return out;
}

std::vector<service::Query> random_batch(const service::Snapshot& oracle, std::size_t count,
                                         std::uint64_t seed) {
  Rng rng(seed);
  const auto& sources = oracle.sources();
  std::vector<service::Query> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({sources[rng.next_below(sources.size())],
                   static_cast<Vertex>(rng.next_below(oracle.num_vertices())),
                   static_cast<EdgeId>(rng.next_below(oracle.num_edges()))});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Shard-worker mode first: the supervisor execs this binary with only the
  // worker spec, and the worker must never parse (or require) serving flags.
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--shard-worker") {
      if (i + 1 >= argc) usage();
      return service::shard_worker_main(argv[i + 1]);
    }
  }

  std::string graph_path, snapshot_path, save_path, batch_path, out_path;
  std::vector<Vertex> sources;
  Config cfg;
  cfg.seed = 42;
  bool demo = false;
  std::size_t random_queries = 0;
  unsigned threads = 0;
  std::size_t repeat = 1;
  unsigned shards = 0;
  bool use_mmap = false;
  bool use_async = false;
  service::SnapshotFormat save_format = service::SnapshotFormat::kV2;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--build") {
      graph_path = next();
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--load-snapshot") {
      snapshot_path = next();
    } else if (arg == "--sources") {
      for (const auto v : parse_list(next())) sources.push_back(v);
    } else if (arg == "--seed") {
      cfg.seed = std::stoull(next());
    } else if (arg == "--oversample") {
      cfg.oversample = std::stod(next());
    } else if (arg == "--exact") {
      cfg.exact = true;
    } else if (arg == "--bk") {
      cfg.landmark_rp = LandmarkRpMethod::kBkAuxGraphs;
    } else if (arg == "--save-snapshot") {
      save_path = next();
    } else if (arg == "--format") {
      const std::string fmt = next();
      if (fmt == "v1") {
        save_format = service::SnapshotFormat::kV1;
      } else if (fmt == "v2") {
        save_format = service::SnapshotFormat::kV2;
      } else {
        usage();
      }
    } else if (arg == "--mmap") {
      use_mmap = true;
    } else if (arg == "--async") {
      use_async = true;
    } else if (arg == "--batch-file") {
      batch_path = next();
    } else if (arg == "--random-queries") {
      random_queries = std::stoull(next());
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--shards") {
      shards = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--repeat") {
      repeat = std::stoull(next());
      if (repeat == 0) repeat = 1;
    } else if (arg == "--out") {
      out_path = next();
    } else {
      usage();
    }
  }

  const int modes = int(!graph_path.empty()) + int(demo) + int(!snapshot_path.empty());
  if (modes != 1) usage();

  try {
    service::QueryService::Options svc_opts;
    svc_opts.threads = threads;
    svc_opts.cache_capacity = 4;
    if (shards >= 1) {
      if (!service::ShardRouter::supported()) {
        std::fprintf(stderr, "error: --shards needs POSIX fork + shared memory\n");
        return 1;
      }
      svc_opts.shards = shards;
      svc_opts.shard_worker_argv = {argv[0]};  // workers exec this binary
    }
    service::QueryService svc(svc_opts);
    std::shared_ptr<const service::Snapshot> oracle;

    Timer build_timer;
    if (!snapshot_path.empty()) {
      // --mmap is the zero-copy serving path: the v2 cells payload stays on
      // disk and pages in on demand, so skip its checksum at load time.
      oracle = svc.load(snapshot_path,
                        {.use_mmap = use_mmap, .verify_cells = !use_mmap});
      std::printf("loaded snapshot %s in %.3f ms (%zu bytes%s)\n", snapshot_path.c_str(),
                  build_timer.millis(), oracle->encoded_size(),
                  oracle->is_mapped() ? ", mmap" : "");
    } else {
      Graph g(0);
      if (demo) {
        Rng rng(cfg.seed);
        g = gen::connected_avg_degree(200, 6.0, rng);
        if (sources.empty()) sources = {0, 50, 100};
        std::printf("# demo instance: n=%u m=%u\n", g.num_vertices(), g.num_edges());
      } else {
        g = io::load_edge_list(graph_path);
        if (sources.empty()) usage();
      }
      oracle = svc.build(g, sources, cfg);
      std::printf("built oracle in %.1f ms\n", build_timer.millis());
    }
    std::printf("oracle: n=%u m=%u sigma=%u threads=%u\n", oracle->num_vertices(),
                oracle->num_edges(), oracle->num_sources(), svc.num_threads());

    if (!save_path.empty()) {
      Timer t;
      oracle->save(save_path, save_format);
      std::printf("saved %s snapshot to %s in %.1f ms (%zu bytes)\n",
                  save_format == service::SnapshotFormat::kV1 ? "v1" : "v2",
                  save_path.c_str(), t.millis(), oracle->encoded_size());
    }

    std::vector<service::Query> batch;
    if (!batch_path.empty()) {
      batch = read_batch_file(batch_path);
    } else if (random_queries > 0) {
      batch = random_batch(*oracle, random_queries, cfg.seed);
    }
    if (batch.empty()) return 0;

    std::vector<Dist> answers;
    Timer serve_timer;
    if (use_async) {
      // Submit every repeat up front, then drain: batches overlap on the
      // pool instead of running lockstep.
      double submit_ms = 0.0;
      std::vector<std::future<service::BatchResult>> futures;
      futures.reserve(repeat);
      {
        Timer submit_timer;
        for (std::size_t r = 0; r < repeat; ++r) {
          futures.push_back(svc.submit_batch(oracle, batch));
        }
        submit_ms = submit_timer.millis();
      }
      for (auto& fut : futures) answers = std::move(fut.get().answers);
      std::printf("submitted %zu async batches in %.3f ms\n", repeat, submit_ms);
    } else {
      for (std::size_t r = 0; r < repeat; ++r) {
        answers = svc.query_batch(*oracle, batch);
      }
    }
    const double secs = serve_timer.seconds();
    const double total = static_cast<double>(batch.size()) * static_cast<double>(repeat);
    std::printf("answered %zu queries x%zu in %.1f ms  (%.0f queries/sec%s)\n", batch.size(),
                repeat, secs * 1e3, secs > 0 ? total / secs : 0.0,
                use_async ? ", async" : "");
    if (shards >= 1) {
      if (const auto router = svc.router(*oracle)) {
        const service::ShardRouterStats st = router->stats();
        std::printf(
            "sharding: %u workers, %llu shm segments placed once (%.2f MiB), "
            "%llu queries routed, %llu respawns\n",
            router->num_shards(), static_cast<unsigned long long>(st.segments_placed),
            static_cast<double>(st.bytes_placed) / (1024.0 * 1024.0),
            static_cast<unsigned long long>(st.queries_routed),
            static_cast<unsigned long long>(st.respawns));
      }
    }

    if (!out_path.empty()) {
      std::ofstream f(out_path);
      if (!f) {
        std::fprintf(stderr, "error: cannot open %s for writing\n", out_path.c_str());
        return 1;
      }
      for (std::size_t i = 0; i < batch.size(); ++i) {
        f << batch[i].s << ' ' << batch[i].t << ' ' << batch[i].e << ' ';
        if (answers[i] == kInfDist) {
          f << "inf\n";
        } else {
          f << answers[i] << '\n';
        }
      }
      std::printf("wrote answers to %s\n", out_path.c_str());
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
  return 0;
}
