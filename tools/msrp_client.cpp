// msrp_client — remote query client and load generator for msrp_serve
// --listen.
//
// Two modes share the connection machinery (src/net/client.hpp):
//
//   Batch mode: send one batch file, write the answers, exit. The output
//   lines are byte-identical to msrp_serve --out for the same batch, which
//   is what the CI network smoke job compares.
//
//     msrp_client --connect 127.0.0.1:7171 --batch-file q.txt --out a.txt
//
//   Load mode: open --connections connections (one thread each), keep
//   --inflight pipelined batches of --batch-size random queries per
//   connection for --duration seconds, then report throughput and
//   per-batch latency percentiles. Random queries are generated from the
//   server's HELLO (source list, n, m) — no local oracle needed.
//
//     msrp_client --connect 127.0.0.1:7171 --connections 4
//         --batch-size 512 --inflight 8 --duration 10
//
// Options:
//   --connect host:port    server address (required)
//   --batch-file <path>    queries, one "s t e" per line ('#' comments)
//   --out <path>           write "s t e answer" lines (batch mode)
//   --connections N        load-mode connections/threads (default 1)
//   --batch-size B         queries per generated batch (default 512)
//   --inflight K           pipelined batches per connection (default 4)
//   --duration S           load-mode seconds (default 5)
//   --seed N               RNG seed for generated queries (default 1)
//   --retries N            extra connect attempts, 200 ms apart (default 25)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "batch_io.hpp"
#include "net/client.hpp"
#include "service/query_gen.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace msrp;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: msrp_client --connect host:port --batch-file <path> [--out <path>]\n"
               "       msrp_client --connect host:port [--connections N] [--batch-size B]\n"
               "                   [--inflight K] [--duration S] [--seed N] [--retries N]\n");
  std::exit(2);
}

std::vector<service::Query> random_batch(const net::HelloInfo& hello, std::size_t count,
                                         Rng& rng) {
  return service::random_query_batch(hello.sources, hello.num_vertices, hello.num_edges,
                                     count, rng);
}

struct LoadResult {
  std::uint64_t batches = 0;
  std::uint64_t queries = 0;
  std::vector<double> latencies_ms;  // one entry per completed batch
  std::string error;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect, batch_path, out_path;
  unsigned connections = 1;
  std::size_t batch_size = 512;
  std::size_t inflight = 4;
  double duration_s = 5.0;
  std::uint64_t seed = 1;
  unsigned retries = 25;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--connect") {
      connect = next();
    } else if (arg == "--batch-file") {
      batch_path = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--connections") {
      connections = static_cast<unsigned>(tools::cli_u64(next(), "--connections"));
    } else if (arg == "--batch-size") {
      batch_size = tools::cli_u64(next(), "--batch-size");
    } else if (arg == "--inflight") {
      inflight = tools::cli_u64(next(), "--inflight");
    } else if (arg == "--duration") {
      duration_s = tools::cli_double(next(), "--duration");
    } else if (arg == "--seed") {
      seed = tools::cli_u64(next(), "--seed");
    } else if (arg == "--retries") {
      retries = static_cast<unsigned>(tools::cli_u64(next(), "--retries"));
    } else {
      usage();
    }
  }
  const std::size_t colon = connect.rfind(':');
  if (connect.empty() || colon == std::string::npos) usage();
  if (connections == 0 || batch_size == 0 || inflight == 0) usage();

  const std::uint64_t port = tools::cli_u64(connect.substr(colon + 1), "--connect");
  if (port == 0 || port > 65535) {
    std::fprintf(stderr, "error: port %llu out of range (1-65535)\n",
                 static_cast<unsigned long long>(port));
    return 2;
  }
  net::ClientOptions copts;
  copts.host = connect.substr(0, colon);
  copts.port = static_cast<std::uint16_t>(port);
  copts.connect_retries = retries;

  try {
    if (!batch_path.empty()) {
      // Batch mode: one connection, one batch, answers out.
      const std::vector<service::Query> batch = tools::read_batch_file(batch_path);
      net::Client client(copts);
      std::printf("connected to %s (oracle: n=%u m=%u sigma=%zu digest=%016llx)\n",
                  connect.c_str(), client.hello().num_vertices, client.hello().num_edges,
                  client.hello().sources.size(),
                  static_cast<unsigned long long>(client.hello().oracle_digest));
      Timer t;
      const std::vector<Dist> answers = client.query_batch(batch);
      std::printf("answered %zu queries in %.3f ms over TCP\n", batch.size(), t.millis());
      if (!out_path.empty()) {
        if (!tools::write_answer_file(out_path, batch, answers)) return 1;
        std::printf("wrote answers to %s\n", out_path.c_str());
      }
      return 0;
    }

    // Load mode: one thread per connection; each keeps `inflight` batches
    // pipelined and stamps per-batch latency send-to-collect.
    std::vector<LoadResult> results(connections);
    std::vector<std::thread> threads;
    threads.reserve(connections);
    Timer wall;
    for (unsigned c = 0; c < connections; ++c) {
      threads.emplace_back([&, c] {
        LoadResult& res = results[c];
        try {
          net::Client client(copts);
          Rng rng(seed + c);
          const auto deadline = std::chrono::steady_clock::now() +
                                std::chrono::duration<double>(duration_s);
          std::unordered_map<std::uint64_t, std::chrono::steady_clock::time_point> sent_at;
          while (std::chrono::steady_clock::now() < deadline) {
            while (client.inflight() < inflight) {
              const auto batch = random_batch(client.hello(), batch_size, rng);
              sent_at.emplace(client.send(batch), std::chrono::steady_clock::now());
            }
            net::BatchAnswer got = client.wait_any();
            const auto it = sent_at.find(got.request_id);
            if (it != sent_at.end()) {
              res.latencies_ms.push_back(
                  std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - it->second)
                      .count());
              sent_at.erase(it);
            }
            ++res.batches;
            res.queries += got.answers.size();
          }
          while (client.inflight() > 0) {  // drain the pipeline
            net::BatchAnswer got = client.wait_any();
            ++res.batches;
            res.queries += got.answers.size();
          }
        } catch (const std::exception& ex) {
          res.error = ex.what();
        }
      });
    }
    for (auto& t : threads) t.join();
    const double secs = wall.seconds();

    std::uint64_t batches = 0, queries = 0;
    std::vector<double> lat;
    for (const LoadResult& res : results) {
      if (!res.error.empty()) {
        std::fprintf(stderr, "error: connection failed: %s\n", res.error.c_str());
        return 1;
      }
      batches += res.batches;
      queries += res.queries;
      lat.insert(lat.end(), res.latencies_ms.begin(), res.latencies_ms.end());
    }
    std::sort(lat.begin(), lat.end());
    std::printf("connections=%u batch=%zu inflight=%zu duration=%.1fs\n", connections,
                batch_size, inflight, duration_s);
    std::printf("completed %llu batches (%llu queries) in %.2f s: %.0f queries/s\n",
                static_cast<unsigned long long>(batches),
                static_cast<unsigned long long>(queries), secs,
                secs > 0 ? static_cast<double>(queries) / secs : 0.0);
    std::printf("batch latency ms: p50=%.3f p90=%.3f p99=%.3f max=%.3f\n",
                percentile(lat, 0.50), percentile(lat, 0.90), percentile(lat, 0.99),
                lat.empty() ? 0.0 : lat.back());
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
  return 0;
}
