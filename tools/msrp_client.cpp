// msrp_client — remote query client and load generator for msrp_serve
// --listen.
//
// Two modes share the connection machinery (src/net/client.hpp):
//
//   Batch mode: send one batch file, write the answers, exit. The output
//   lines are byte-identical to msrp_serve --out for the same batch, which
//   is what the CI network smoke job compares.
//
//     msrp_client --connect 127.0.0.1:7171 --batch-file q.txt --out a.txt
//
//   Load mode: open --connections connections (one thread each), keep
//   --inflight pipelined batches of --batch-size random queries per
//   connection for --duration seconds, then report throughput and
//   per-batch latency percentiles. Random queries are generated from the
//   server's HELLO (source list, n, m) — no local oracle needed.
//
//     msrp_client --connect 127.0.0.1:7171 --connections 4
//         --batch-size 512 --inflight 8 --duration 10
//
// Multi-tenant servers (msrp_serve --registry, protocol v2) add a third
// axis: --register uploads a graph and targets it, --digest targets an
// oracle registered earlier (by this client or anyone else), and --list
// prints what the server is holding. Both modes then run against the
// chosen oracle instead of the HELLO default.
//
//     msrp_client --connect 127.0.0.1:7171 --register g.txt --sources 0,5,9
//         --batch-file q.txt --out a.txt
//     msrp_client --connect 127.0.0.1:7171 --digest 9f3ac2... --duration 10
//
// Protocol v3 servers additionally serve the typed workloads: --workload
// switches batch mode to one of the v3 opcodes, reading the workload's own
// batch-file format and writing lines byte-identical to msrp_serve
// --workload for the same file (the CI smoke job compares exactly that).
//
//     msrp_client --connect 127.0.0.1:7171 --workload vitality
//         --batch-file v.txt --out a.txt
//
// Options:
//   --connect host:port    server address (required)
//   --batch-file <path>    queries, one "s t e" per line ('#' comments)
//   --workload <kind>      batch mode only — send the file as a typed v3
//                          batch: "vitality" ("s t k" lines), "vickrey"
//                          ("s t"), or "kfail" ("s t [e...]", at most 2
//                          failed edges per query)
//   --out <path>           write "s t e answer" lines (batch mode)
//   --connections N        load-mode connections/threads (default 1)
//   --batch-size B         queries per generated batch (default 512)
//   --inflight K           pipelined batches per connection (default 4)
//   --duration S           load-mode seconds (default 5)
//   --seed N               RNG seed for generated queries (default 1)
//   --retries N            extra connect attempts, 200 ms apart (default 25)
//   --deadline-ms N        end-to-end budget per batch, carried on the wire;
//                          batch mode retries on backoff inside the budget,
//                          load mode counts DEADLINE_EXCEEDED batches
//   --max-attempts N       batch-mode retry attempts within the deadline
//                          (default 3; needs --deadline-ms)
//   --register <path>      register this edge-list graph first and target
//                          its oracle (requires --sources; needs a
//                          --registry server)
//   --sources a,b,c        source vertices for --register
//   --build-seed N         solver seed for --register (default: library)
//   --digest HEX           target a registered oracle (16 hex digits, as
//                          printed by the tools); unknown digests are a
//                          usage error listing what the server has
//   --list                 print the server's resident oracles and exit
//   --stats                print the server's metrics registry (protocol
//                          v4 STATS_REQUEST) and exit: one line per
//                          counter/gauge, histogram lines with derived
//                          percentiles
#include <algorithm>
#include <chrono>
#include <array>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "batch_io.hpp"
#include "graph/io.hpp"
#include "net/client.hpp"
#include "obs/metrics.hpp"
#include "registry/oracle_state.hpp"
#include "service/query_gen.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace msrp;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: msrp_client --connect host:port --batch-file <path> [--out <path>]\n"
               "                   [--workload vitality|vickrey|kfail]\n"
               "       msrp_client --connect host:port [--connections N] [--batch-size B]\n"
               "                   [--inflight K] [--duration S] [--seed N] [--retries N]\n"
               "                   [--deadline-ms N] [--max-attempts N]\n"
               "       msrp_client --connect host:port --register <graph> --sources a,b,c\n"
               "                   [--build-seed N] [...batch or load options]\n"
               "       msrp_client --connect host:port --digest HEX [...batch or load options]\n"
               "       msrp_client --connect host:port --list\n"
               "       msrp_client --connect host:port --stats\n");
  std::exit(2);
}

std::vector<Vertex> parse_list(const std::string& s) {
  std::vector<Vertex> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(static_cast<Vertex>(std::stoul(s.substr(pos, next - pos))));
    pos = next + 1;
  }
  return out;
}

/// Identity of the oracle batches will run against — what random query
/// generation needs. Defaults to the HELLO oracle; --register / --digest
/// swap in the targeted one.
struct Target {
  std::optional<std::uint64_t> digest;  // passed on every QUERY_BATCH
  std::uint32_t num_vertices = 0;
  std::uint32_t num_edges = 0;
  std::vector<Vertex> sources;
};

std::vector<service::Query> random_batch(const Target& target, std::size_t count, Rng& rng) {
  return service::random_query_batch(target.sources, target.num_vertices, target.num_edges,
                                     count, rng);
}

struct LoadResult {
  std::uint64_t batches = 0;
  std::uint64_t queries = 0;
  std::uint64_t busy = 0;      // batches the server rejected under load
  std::uint64_t expired = 0;   // batches answered DEADLINE_EXCEEDED
  std::vector<double> latencies_ms;  // one entry per completed batch
  std::string error;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  // The client library sends with MSG_NOSIGNAL, but a server vanishing
  // between poll and send must never kill the tool either way.
#ifndef _WIN32
  std::signal(SIGPIPE, SIG_IGN);
#endif
  std::string connect, batch_path, out_path, register_path, workload;
  std::vector<Vertex> reg_sources;
  std::optional<std::uint64_t> build_seed;
  bool digest_given = false;
  std::uint64_t digest_value = 0;
  bool list_only = false;
  bool stats_only = false;
  unsigned connections = 1;
  std::size_t batch_size = 512;
  std::size_t inflight = 4;
  double duration_s = 5.0;
  std::uint64_t seed = 1;
  unsigned retries = 25;
  std::uint64_t deadline_ms = 0;
  unsigned max_attempts = 3;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--connect") {
      connect = next();
    } else if (arg == "--batch-file") {
      batch_path = next();
    } else if (arg == "--workload") {
      workload = next();
      if (workload != "vitality" && workload != "vickrey" && workload != "kfail") usage();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--connections") {
      connections = static_cast<unsigned>(tools::cli_u64(next(), "--connections"));
    } else if (arg == "--batch-size") {
      batch_size = tools::cli_u64(next(), "--batch-size");
    } else if (arg == "--inflight") {
      inflight = tools::cli_u64(next(), "--inflight");
    } else if (arg == "--duration") {
      duration_s = tools::cli_double(next(), "--duration");
    } else if (arg == "--seed") {
      seed = tools::cli_u64(next(), "--seed");
    } else if (arg == "--retries") {
      retries = static_cast<unsigned>(tools::cli_u64(next(), "--retries"));
    } else if (arg == "--deadline-ms") {
      deadline_ms = tools::cli_u64(next(), "--deadline-ms");
    } else if (arg == "--max-attempts") {
      max_attempts = static_cast<unsigned>(tools::cli_u64(next(), "--max-attempts"));
      if (max_attempts == 0) max_attempts = 1;
    } else if (arg == "--register") {
      register_path = next();
    } else if (arg == "--sources") {
      reg_sources = parse_list(next());
    } else if (arg == "--build-seed") {
      build_seed = tools::cli_u64(next(), "--build-seed");
    } else if (arg == "--digest") {
      digest_given = true;
      digest_value = tools::cli_hex_u64(next(), "--digest");
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--stats") {
      stats_only = true;
    } else {
      usage();
    }
  }
  if (!register_path.empty() && reg_sources.empty()) usage();
  if (!register_path.empty() && digest_given) usage();  // one way to pick a target
  if (!workload.empty() && batch_path.empty()) usage();  // typed batches are batch mode
  const std::size_t colon = connect.rfind(':');
  if (connect.empty() || colon == std::string::npos) usage();
  if (connections == 0 || batch_size == 0 || inflight == 0) usage();

  const std::uint64_t port = tools::cli_u64(connect.substr(colon + 1), "--connect");
  if (port == 0 || port > 65535) {
    std::fprintf(stderr, "error: port %llu out of range (1-65535)\n",
                 static_cast<unsigned long long>(port));
    return 2;
  }
  net::ClientOptions copts;
  copts.host = connect.substr(0, colon);
  copts.port = static_cast<std::uint16_t>(port);
  copts.connect_retries = retries;

  try {
    // Control connection: handshake, optional list/register/digest target
    // resolution. Batch mode reuses it; load mode dials its own.
    net::Client client(copts);
    std::printf("connected to %s (oracle: n=%u m=%u sigma=%zu digest=%016llx%s)\n",
                connect.c_str(), client.hello().num_vertices, client.hello().num_edges,
                client.hello().sources.size(),
                static_cast<unsigned long long>(client.hello().oracle_digest),
                client.registry_enabled() ? ", registry" : "");

    if (stats_only) {
      // One typed STATS round trip, printed in a stable line-per-series
      // shape (scripts/check_metrics_exposition.py cross-checks these
      // counters against the /metrics scrape).
      const net::StatsSnapshotFrame snap = client.stats();
      for (const net::StatsCounter& c : snap.counters) {
        std::printf("counter %s %llu\n", c.name.c_str(),
                    static_cast<unsigned long long>(c.value));
      }
      for (const net::StatsGauge& g : snap.gauges) {
        std::printf("gauge %s %lld\n", g.name.c_str(), static_cast<long long>(g.value));
      }
      for (const net::StatsHistogram& h : snap.histograms) {
        // Re-densify the sparse buckets over the shared geometry so the
        // percentile math is exactly the server's.
        std::array<std::uint64_t, obs::kHistogramBuckets> buckets{};
        for (const auto& [idx, count] : h.buckets) {
          if (idx < obs::kHistogramBuckets) buckets[idx] = count;
        }
        const auto q = [&buckets](double p) {
          return obs::quantile_ns(buckets.data(), buckets.size(), p);
        };
        std::printf("histogram %s[%s] count=%llu sum_ns=%llu p50_ns=%llu p90_ns=%llu "
                    "p99_ns=%llu p999_ns=%llu\n",
                    h.name.c_str(), h.label.c_str(),
                    static_cast<unsigned long long>(h.count),
                    static_cast<unsigned long long>(h.sum_ns),
                    static_cast<unsigned long long>(q(0.50)),
                    static_cast<unsigned long long>(q(0.90)),
                    static_cast<unsigned long long>(q(0.99)),
                    static_cast<unsigned long long>(q(0.999)));
      }
      return 0;
    }

    if (list_only) {
      const std::vector<net::OracleListEntry> oracles = client.list_oracles();
      std::printf("%zu oracle(s) resident:\n", oracles.size());
      for (const net::OracleListEntry& e : oracles) {
        std::printf("  %016llx  %-12s n=%-8u m=%-8u sigma=%-4zu inflight=%-4u "
                    "answered=%llu bytes=%llu\n",
                    static_cast<unsigned long long>(e.digest),
                    registry::to_string(e.state), e.num_vertices, e.num_edges,
                    e.sources.size(), e.inflight_batches,
                    static_cast<unsigned long long>(e.queries_answered),
                    static_cast<unsigned long long>(e.footprint_bytes));
      }
      return 0;
    }

    Target target;
    target.num_vertices = client.hello().num_vertices;
    target.num_edges = client.hello().num_edges;
    target.sources = client.hello().sources;

    if (!register_path.empty()) {
      const Graph g = io::load_edge_list(register_path);
      Timer rt;
      const net::RegisterAckFrame ack =
          client.register_graph(g.num_vertices(), g.edges(), reg_sources, build_seed);
      std::printf("registered %s: digest=%016llx n=%u m=%u sigma=%zu in %.1f ms\n",
                  register_path.c_str(), static_cast<unsigned long long>(ack.digest),
                  ack.num_vertices, ack.num_edges, ack.sources.size(), rt.millis());
      target.digest = ack.digest;
      target.num_vertices = ack.num_vertices;
      target.num_edges = ack.num_edges;
      target.sources = ack.sources;
    } else if (digest_given) {
      // Resolve the digest against what the server actually has — an
      // unknown one is a usage error, with the valid choices spelled out.
      target.digest = digest_value;
      if (client.registry_enabled()) {
        const std::vector<net::OracleListEntry> oracles = client.list_oracles();
        const net::OracleListEntry* found = nullptr;
        for (const net::OracleListEntry& e : oracles) {
          if (e.digest == digest_value) found = &e;
        }
        if (found == nullptr || found->state != registry::OracleState::kReady) {
          std::fprintf(stderr, "error: --digest %016llx: %s on this server\n",
                       static_cast<unsigned long long>(digest_value),
                       found == nullptr ? "no such oracle"
                                        : registry::to_string(found->state));
          std::fprintf(stderr, "available oracles:\n");
          for (const net::OracleListEntry& e : oracles) {
            std::fprintf(stderr, "  %016llx  %s n=%u m=%u\n",
                         static_cast<unsigned long long>(e.digest),
                         registry::to_string(e.state), e.num_vertices, e.num_edges);
          }
          return 2;
        }
        target.num_vertices = found->num_vertices;
        target.num_edges = found->num_edges;
        target.sources = found->sources;
      } else if (digest_value != client.hello().oracle_digest) {
        std::fprintf(stderr,
                     "error: --digest %016llx: server has only %016llx (no registry)\n",
                     static_cast<unsigned long long>(digest_value),
                     static_cast<unsigned long long>(client.hello().oracle_digest));
        return 2;
      }
    }

    if (!workload.empty()) {
      // Typed batch mode (protocol v3): one connection, one workload
      // batch, answers out — same retry shape as the point-query branch
      // below. send_* throws up front against a pre-v3 server.
      net::RetryPolicy policy;
      policy.deadline_ms = static_cast<std::uint32_t>(deadline_ms);
      policy.max_attempts = max_attempts;
      const bool retry = deadline_ms > 0;
      std::size_t answered = 0;
      Timer t;
      if (workload == "vitality") {
        const auto batch = tools::read_vitality_batch_file(batch_path);
        const std::vector<service::VitalityResult> results =
            retry ? client.vitality_batch_retry(batch, policy, target.digest)
                  : client.vitality_batch(batch, target.digest);
        answered = batch.size();
        if (!out_path.empty() &&
            !tools::write_vitality_answer_file(out_path, batch, results)) {
          return 1;
        }
      } else if (workload == "vickrey") {
        const auto batch = tools::read_vickrey_batch_file(batch_path);
        const std::vector<service::VickreyResult> results =
            retry ? client.vickrey_batch_retry(batch, policy, target.digest)
                  : client.vickrey_batch(batch, target.digest);
        answered = batch.size();
        if (!out_path.empty() &&
            !tools::write_vickrey_answer_file(out_path, batch, results)) {
          return 1;
        }
      } else {  // kfail
        const auto batch = tools::read_kfail_batch_file(batch_path);
        const std::vector<Dist> answers =
            retry ? client.kfail_batch_retry(batch, policy, target.digest)
                  : client.kfail_batch(batch, target.digest);
        answered = batch.size();
        if (!out_path.empty() && !tools::write_kfail_answer_file(out_path, batch, answers)) {
          return 1;
        }
      }
      std::printf("answered %zu %s queries in %.3f ms over TCP\n", answered,
                  workload.c_str(), t.millis());
      if (!out_path.empty()) std::printf("wrote answers to %s\n", out_path.c_str());
      return 0;
    }

    if (!batch_path.empty()) {
      // Batch mode: one connection, one batch, answers out. With a
      // deadline the retry loop hides transient BUSY / connection loss /
      // server-side expiry inside the budget; without one the legacy
      // unbounded round trip is kept.
      const std::vector<service::Query> batch = tools::read_batch_file(batch_path);
      Timer t;
      std::vector<Dist> answers;
      if (deadline_ms > 0) {
        net::RetryPolicy policy;
        policy.deadline_ms = static_cast<std::uint32_t>(deadline_ms);
        policy.max_attempts = max_attempts;
        answers = client.query_batch_retry(batch, policy, target.digest);
      } else {
        answers = client.query_batch(batch, target.digest);
      }
      std::printf("answered %zu queries in %.3f ms over TCP\n", batch.size(), t.millis());
      if (!out_path.empty()) {
        if (!tools::write_answer_file(out_path, batch, answers)) return 1;
        std::printf("wrote answers to %s\n", out_path.c_str());
      }
      return 0;
    }

    // Load mode: one thread per connection; each keeps `inflight` batches
    // pipelined and stamps per-batch latency send-to-collect.
    std::vector<LoadResult> results(connections);
    std::vector<std::thread> threads;
    threads.reserve(connections);
    Timer wall;
    for (unsigned c = 0; c < connections; ++c) {
      threads.emplace_back([&, c] {
        LoadResult& res = results[c];
        try {
          net::Client worker(copts);
          Rng rng(seed + c);
          const auto deadline = std::chrono::steady_clock::now() +
                                std::chrono::duration<double>(duration_s);
          std::unordered_map<std::uint64_t, std::chrono::steady_clock::time_point> sent_at;
          const std::optional<std::uint32_t> batch_deadline =
              deadline_ms > 0 ? std::optional<std::uint32_t>(
                                    static_cast<std::uint32_t>(deadline_ms))
                              : std::nullopt;
          while (std::chrono::steady_clock::now() < deadline) {
            while (worker.inflight() < inflight) {
              const auto batch = random_batch(target, batch_size, rng);
              sent_at.emplace(worker.send(batch, target.digest, batch_deadline),
                              std::chrono::steady_clock::now());
            }
            try {
              net::BatchAnswer got = worker.wait_any();
              const auto it = sent_at.find(got.request_id);
              if (it != sent_at.end()) {
                res.latencies_ms.push_back(
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - it->second)
                        .count());
                sent_at.erase(it);
              }
              ++res.batches;
              res.queries += got.answers.size();
            } catch (const net::BusyError&) {
              // Admission control said no: the batch never ran. Count it
              // and keep the pipeline full — overload is part of what the
              // load generator measures.
              ++res.busy;
            } catch (const net::DeadlineError&) {
              // The server gave up on the batch inside its budget — also a
              // load signal, not a tool failure.
              ++res.expired;
            }
          }
          while (worker.inflight() > 0) {  // drain the pipeline
            try {
              net::BatchAnswer got = worker.wait_any();
              ++res.batches;
              res.queries += got.answers.size();
            } catch (const net::BusyError&) {
              ++res.busy;
            } catch (const net::DeadlineError&) {
              ++res.expired;
            }
          }
        } catch (const std::exception& ex) {
          res.error = ex.what();
        }
      });
    }
    for (auto& t : threads) t.join();
    const double secs = wall.seconds();

    std::uint64_t batches = 0, queries = 0, busy = 0, expired = 0;
    std::vector<double> lat;
    for (const LoadResult& res : results) {
      if (!res.error.empty()) {
        std::fprintf(stderr, "error: connection failed: %s\n", res.error.c_str());
        return 1;
      }
      batches += res.batches;
      queries += res.queries;
      busy += res.busy;
      expired += res.expired;
      lat.insert(lat.end(), res.latencies_ms.begin(), res.latencies_ms.end());
    }
    std::sort(lat.begin(), lat.end());
    std::printf("connections=%u batch=%zu inflight=%zu duration=%.1fs\n", connections,
                batch_size, inflight, duration_s);
    std::printf("completed %llu batches (%llu queries) in %.2f s: %.0f queries/s, "
                "%llu busy rejections, %llu deadline expirations\n",
                static_cast<unsigned long long>(batches),
                static_cast<unsigned long long>(queries), secs,
                secs > 0 ? static_cast<double>(queries) / secs : 0.0,
                static_cast<unsigned long long>(busy),
                static_cast<unsigned long long>(expired));
    std::printf("batch latency ms: p50=%.3f p90=%.3f p99=%.3f max=%.3f\n",
                percentile(lat, 0.50), percentile(lat, 0.90), percentile(lat, 0.99),
                lat.empty() ? 0.0 : lat.back());
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
  return 0;
}
