// Reproduces the paper's two figures as executable demonstrations.
//
// Figure 1 — SUFFIX(P): a replacement path leaves the canonical st path at a
// divergence vertex and (here) merges back before t; SUFFIX(P) is the part
// after the divergence.
//
// Figure 2 — Lemma 13's contradiction: if a landmark r sits near t on the
// suffix of a LARGE replacement path and the failing edge e were on the rt
// path, the alternate route P' = su + ur + (rt <> e) would be short,
// contradicting largeness. We exhibit the quantities on a concrete graph.
//
//   $ ./examples/suffix_decomposition
#include <cstdio>

#include "core/msrp.hpp"
#include "graph/generators.hpp"
#include "rp/single_pair.hpp"

using namespace msrp;

namespace {

void figure1() {
  std::printf("=== Figure 1: SUFFIX(P) ===\n\n");
  // Path 0-1-...-9 plus a detour 2-10-11-12-6: failing edge (3,4) forces the
  // replacement to diverge at 2 and merge back at 6.
  GraphBuilder gb(10);
  for (Vertex v = 0; v + 1 < 10; ++v) gb.add_edge(v, v + 1);
  const Vertex d1 = gb.add_vertex(), d2 = gb.add_vertex(), d3 = gb.add_vertex();
  gb.add_edge(2, d1);
  gb.add_edge(d1, d2);
  gb.add_edge(d2, d3);
  gb.add_edge(d3, 6);
  const Graph g = gb.build();

  const Vertex s = 0, t = 9;
  const BfsTree ts(g, s);
  const SinglePairRp rp = replacement_paths(g, ts, t);
  std::printf("st path:            ");
  for (const Vertex v : rp.path) std::printf("%u ", v);
  std::printf(" (length %zu)\n", rp.path.size() - 1);

  const std::uint32_t fail_pos = 3;  // edge (3,4)
  std::printf("failing edge:       (3,4)  ->  |st <> e| = %u\n", rp.avoiding[fail_pos]);
  std::printf("replacement path:   0 1 2 %u %u %u 6 7 8 9\n", d1, d2, d3);
  std::printf("SUFFIX(P):          starts at the divergence vertex 2: "
              "%u %u %u 6 7 8 9  (length 7)\n\n", d1, d2, d3);
  std::printf("  s=0 --1--2==3==4--5--6--7--8--9=t      == : failed edge (3,4)\n");
  std::printf("           \\                /\n");
  std::printf("            %u --- %u --- %u                 the detour of SUFFIX(P)\n\n",
              d1, d2, d3);
}

void figure2() {
  std::printf("=== Figure 2: Lemma 13 (why e cannot lie on the rt path) ===\n\n");
  // Long path 0..19 with a chord making a large replacement path, plus a
  // landmark r near t on the suffix.
  const Vertex n = 20;
  GraphBuilder gb(n);
  for (Vertex v = 0; v + 1 < n; ++v) gb.add_edge(v, v + 1);
  // Big detour from 1 around the failed edge (9,10), rejoining at 18. It is
  // longer than the straight path, so the canonical st path stays on 0..19
  // and the detour only appears as a replacement.
  Vertex prev = 1;
  for (int i = 0; i < 22; ++i) {
    const Vertex w = gb.add_vertex();
    gb.add_edge(prev, w);
    prev = w;
  }
  gb.add_edge(prev, 18);
  const Graph g = gb.build();

  const Vertex s = 0, t = 19;
  const BfsTree ts(g, s);
  const SinglePairRp rp = replacement_paths(g, ts, t);
  const std::uint32_t fail_pos = 9;  // edge (9,10)
  const Dist d_st = ts.dist(t);
  const Dist repl = rp.avoiding[fail_pos];
  std::printf("|st| = %u, failing edge (9,10), |st <> e| = %u\n", d_st, repl);
  std::printf("the replacement is LARGE: %u > |se| + 2T for any modest T "
              "(detour length %u)\n", repl, repl - 2);

  // The landmark r = 18 sits on the suffix, one hop from t.
  const BfsTree tr(g, 18);
  std::printf("landmark r=18 on SUFFIX(P): |rt| = %u and the rt path avoids e —\n",
              tr.dist(t));
  std::printf("otherwise P' = su + ur + (rt <> e) would cost about |se| + 2|ru| + |rt|,\n");
  std::printf("contradicting that the true replacement is large (Lemma 13).\n");
  std::printf("so d(s,t,e) decomposes: d(s,r,e) + |rt| = %u + %u = %u  (matches %u)\n\n",
              replacement_paths(g, ts, 18).avoiding[9], tr.dist(t),
              replacement_paths(g, ts, 18).avoiding[9] + tr.dist(t), repl);
}

}  // namespace

int main() {
  figure1();
  figure2();
  std::printf("Both structures are exactly what Algorithms 2-4 exploit: find a\n");
  std::printf("landmark on the suffix, then stitch d(s,r,e) + d(r,t).\n");
  return 0;
}
