// Network resilience audit with multiple depots — the multi-source scenario
// the MSRP problem models directly.
//
// A logistics operator runs sigma depots on a road grid. For every customer
// and every road segment on its delivery route, the operator wants the
// detour cost if that segment closes: exactly d(s, t, e) - d(s, t), which
// is the Vickrey price of the segment. The audit is one VICKREY_PRICES
// batch per the service's workload entry points — no hand-rolled
// skip-an-edge loops — and the "what if BOTH bridges close?" scenario at
// the end is a two-edge K_FAIL batch, beyond what any single-failure
// oracle row can answer.
//
// Runs in-process by default, or against a live msrp_serve --registry
// server with identical output:
//
//   $ ./examples/network_resilience
//   $ msrp_serve --registry --listen 7171 &
//   $ ./examples/network_resilience --connect 127.0.0.1:7171
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "net/client.hpp"
#include "service/query_service.hpp"
#include "service/workloads.hpp"

using namespace msrp;

int main(int argc, char** argv) {
  std::string connect;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--connect" && i + 1 < argc) {
      connect = argv[++i];
    } else {
      std::fprintf(stderr, "usage: network_resilience [--connect host:port]\n");
      return 2;
    }
  }

  // A 12x12 city grid with a river: a row where only two bridges cross.
  const Vertex rows = 12, cols = 12;
  GraphBuilder gb(rows * cols);
  const auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols) gb.add_edge(id(r, c), id(r, c + 1));
      const bool river = (r == 5);  // crossings between row 5 and 6
      if (r + 1 < rows) {
        if (!river || c == 2 || c == 9) gb.add_edge(id(r, c), id(r + 1, c));
      }
    }
  }
  const Graph g = gb.build();
  const std::vector<Vertex> depots{id(0, 0), id(11, 11), id(0, 11)};

  // One Vickrey query per (depot, customer): every route segment's detour
  // premium comes back as its price, monopolies (no detour) as kInfDist.
  std::vector<service::VickreyQuery> audit;
  audit.reserve(depots.size() * g.num_vertices());
  for (const Vertex s : depots) {
    for (Vertex t = 0; t < g.num_vertices(); ++t) audit.push_back({s, t});
  }
  // The bridge stress test: both crossings closed at once. A single-failure
  // row d(s, t, e) cannot express this — it is a two-edge K_FAIL query.
  const EdgeId bridge_w = g.find_edge(id(5, 2), id(6, 2));
  const EdgeId bridge_e = g.find_edge(id(5, 9), id(6, 9));
  std::vector<service::KFailQuery> stress;
  for (const Vertex s : depots) {
    stress.push_back({s, id(8, 5), {bridge_w, bridge_e}});
  }

  std::vector<service::VickreyResult> prices;
  std::vector<Dist> stressed;
  if (connect.empty()) {
    service::QueryService svc({.threads = 2});
    const auto oracle = svc.build(g, depots, Config{});
    prices = svc.vickrey_batch(*oracle, audit);
    stressed = svc.kfail_batch(*oracle, stress);
  } else {
    const std::size_t colon = connect.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "error: --connect needs host:port\n");
      return 2;
    }
    net::ClientOptions copts;
    copts.host = connect.substr(0, colon);
    copts.port = static_cast<std::uint16_t>(std::stoul(connect.substr(colon + 1)));
    copts.connect_retries = 10;
    net::Client client(copts);
    const net::RegisterAckFrame ack = client.register_graph(g.num_vertices(), g.edges(), depots);
    prices = client.vickrey_batch(audit, ack.digest);
    stressed = client.kfail_batch(stress, ack.digest);
  }

  std::printf("city: %ux%u grid with a 2-bridge river, n=%u m=%u, depots: 3%s\n\n", rows,
              cols, g.num_vertices(), g.num_edges(),
              connect.empty() ? "" : " [served over TCP]");

  // Fragility: for each edge, the worst detour premium over all (s, t).
  struct Fragile {
    EdgeId e;
    Dist premium;
  };
  std::vector<Dist> worst_premium(g.num_edges(), 0);
  std::uint64_t pairs = 0, monopolies = 0;
  for (const service::VickreyResult& res : prices) {
    for (const service::VickreyCharge& c : res.prices) {
      ++pairs;
      if (c.price == kInfDist) {
        ++monopolies;
        worst_premium[c.edge] = kInfDist;
      } else if (worst_premium[c.edge] != kInfDist) {
        worst_premium[c.edge] = std::max(worst_premium[c.edge], c.price);
      }
    }
  }

  std::vector<Fragile> ranked;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (worst_premium[e] > 0) ranked.push_back({e, worst_premium[e]});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Fragile& a, const Fragile& b) { return a.premium > b.premium; });

  std::printf("audited %llu (route, segment) pairs; %llu with NO detour\n\n",
              static_cast<unsigned long long>(pairs),
              static_cast<unsigned long long>(monopolies));
  std::printf("top fragile segments (worst detour premium over all routes):\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, ranked.size()); ++i) {
    const auto [u, v] = g.endpoints(ranked[i].e);
    if (ranked[i].premium == kInfDist) {
      std::printf("  (%2u,%2u) <-> (%2u,%2u)  premium: UNBOUNDED\n", u / cols, u % cols,
                  v / cols, v % cols);
    } else {
      std::printf("  (%2u,%2u) <-> (%2u,%2u)  premium: +%u\n", u / cols, u % cols, v / cols,
                  v % cols, ranked[i].premium);
    }
  }

  std::printf("\nper-depot resilience (mean detour premium on its routes):\n");
  for (std::size_t d = 0; d < depots.size(); ++d) {
    const Vertex s = depots[d];
    std::uint64_t total = 0, cnt = 0, inf = 0;
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      const service::VickreyResult& res = prices[d * g.num_vertices() + t];
      for (const service::VickreyCharge& c : res.prices) {
        if (c.price == kInfDist) {
          ++inf;
        } else {
          total += c.price;
          ++cnt;
        }
      }
    }
    std::printf("  depot (%2u,%2u): mean premium %.2f over %llu segments"
                " (%llu unbridgeable)\n",
                s / cols, s % cols, cnt ? static_cast<double>(total) / cnt : 0.0,
                static_cast<unsigned long long>(cnt), static_cast<unsigned long long>(inf));
  }

  std::printf("\nif BOTH bridges close (two-edge failure, customer at (8,5)):\n");
  for (std::size_t d = 0; d < depots.size(); ++d) {
    const Vertex s = depots[d];
    if (stressed[d] == kInfDist) {
      std::printf("  depot (%2u,%2u): CUT OFF from the south bank\n", s / cols, s % cols);
    } else {
      std::printf("  depot (%2u,%2u): still reachable, %u hops\n", s / cols, s % cols,
                  stressed[d]);
    }
  }
  std::printf("\nthe two bridge rows dominate the fragility ranking, as expected.\n");
  return 0;
}
