// Network resilience audit with multiple depots — the multi-source scenario
// the MSRP problem models directly.
//
// A logistics operator runs sigma depots on a road grid. For every customer
// and every road segment on its delivery route, the operator wants the
// detour cost if that segment closes: exactly d(s, t, e). This example
// computes the full table and reports the fragility profile of the network:
// worst detours, monopoly segments (no detour exists), and per-depot
// resilience summaries.
//
//   $ ./examples/network_resilience
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/msrp.hpp"
#include "graph/generators.hpp"

using namespace msrp;

int main() {
  // A 12x12 city grid with a river: a row where only two bridges cross.
  const Vertex rows = 12, cols = 12;
  GraphBuilder gb(rows * cols);
  const auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols) gb.add_edge(id(r, c), id(r, c + 1));
      const bool river = (r == 5);  // crossings between row 5 and 6
      if (r + 1 < rows) {
        if (!river || c == 2 || c == 9) gb.add_edge(id(r, c), id(r + 1, c));
      }
    }
  }
  const Graph g = gb.build();
  const std::vector<Vertex> depots{id(0, 0), id(11, 11), id(0, 11)};

  const MsrpResult res = solve_msrp(g, depots);
  std::printf("city: %ux%u grid with a 2-bridge river, n=%u m=%u, depots: 3\n\n", rows,
              cols, g.num_vertices(), g.num_edges());

  // Fragility: for each edge, the worst detour premium over all (s, t).
  struct Fragile {
    EdgeId e;
    Dist premium;
  };
  std::vector<Dist> worst_premium(g.num_edges(), 0);
  std::uint64_t pairs = 0, monopolies = 0;
  for (const Vertex s : depots) {
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      const auto row = res.row(s, t);
      std::uint32_t pos = 0;
      for (const EdgeId e : res.tree(s).path_edges(t)) {
        ++pairs;
        const Dist d = res.shortest(s, t);
        if (row[pos] == kInfDist) {
          ++monopolies;
          worst_premium[e] = kInfDist;
        } else if (worst_premium[e] != kInfDist) {
          worst_premium[e] = std::max(worst_premium[e], row[pos] - d);
        }
        ++pos;
      }
    }
  }

  std::vector<Fragile> ranked;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (worst_premium[e] > 0) ranked.push_back({e, worst_premium[e]});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Fragile& a, const Fragile& b) { return a.premium > b.premium; });

  std::printf("audited %llu (route, segment) pairs; %llu with NO detour\n\n",
              static_cast<unsigned long long>(pairs),
              static_cast<unsigned long long>(monopolies));
  std::printf("top fragile segments (worst detour premium over all routes):\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, ranked.size()); ++i) {
    const auto [u, v] = g.endpoints(ranked[i].e);
    if (ranked[i].premium == kInfDist) {
      std::printf("  (%2u,%2u) <-> (%2u,%2u)  premium: UNBOUNDED\n", u / cols, u % cols,
                  v / cols, v % cols);
    } else {
      std::printf("  (%2u,%2u) <-> (%2u,%2u)  premium: +%u\n", u / cols, u % cols, v / cols,
                  v % cols, ranked[i].premium);
    }
  }

  std::printf("\nper-depot resilience (mean detour premium on its routes):\n");
  for (const Vertex s : depots) {
    std::uint64_t total = 0, cnt = 0, inf = 0;
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      const auto row = res.row(s, t);
      const Dist d = res.shortest(s, t);
      for (const Dist v : row) {
        if (v == kInfDist) {
          ++inf;
        } else {
          total += v - d;
          ++cnt;
        }
      }
    }
    std::printf("  depot (%2u,%2u): mean premium %.2f over %llu segments"
                " (%llu unbridgeable)\n",
                s / cols, s % cols, cnt ? static_cast<double>(total) / cnt : 0.0,
                static_cast<unsigned long long>(cnt), static_cast<unsigned long long>(inf));
  }
  std::printf("\nthe two bridge rows dominate the fragility ranking, as expected.\n");
  return 0;
}
