// The Section 9 lower bound, executed: Boolean matrix multiplication solved
// by sqrt(n / sigma) MSRP instances (Theorem 28). This is why no
// combinatorial MSRP algorithm can beat O~(m sqrt(n sigma)) unless the BMM
// conjecture falls.
//
//   $ ./examples/bmm_via_msrp
#include <cstdio>

#include "bmm/multiply.hpp"
#include "bmm/reduction.hpp"
#include "util/timer.hpp"

using namespace msrp;
using namespace msrp::bmm;

int main() {
  Rng rng(99);
  const std::uint32_t n = 36, sigma = 4;
  const BoolMatrix a = BoolMatrix::random(n, 0.2, rng);
  const BoolMatrix b = BoolMatrix::random(n, 0.2, rng);

  std::printf("multiplying two %ux%u Boolean matrices (density 0.2)\n\n", n, n);

  Timer t1;
  const BoolMatrix direct = multiply_bitset(a, b);
  std::printf("combinatorial row-OR multiply : %8.3f ms\n", t1.millis());

  Config cfg;
  cfg.exact = true;  // deterministic readout for the demo
  Timer t2;
  const BoolMatrix via = multiply_via_msrp(a, b, sigma, cfg);
  std::printf("via %u-source MSRP gadgets    : %8.3f ms\n", sigma, t2.millis());

  std::printf("\nresults match: %s\n", direct == via ? "YES" : "NO");
  std::printf("ones in C: %llu of %u\n",
              static_cast<unsigned long long>(direct.popcount()), n * n);

  std::printf(
      "\nEach gadget packs sqrt(n sigma) rows of C into one graph: sigma\n"
      "chunk paths whose staircase pendants meter out distances so that\n"
      "  C[row][l] = 1  <=>  d(s, c_l, e_row) == q + row_offset + 1,\n"
      "i.e. one replacement-path value per matrix entry. A faster MSRP\n"
      "would thus multiply Boolean matrices faster — the conditional\n"
      "lower bound of Theorem 2.\n");
  return 0;
}
