// Most vital edges (Malik–Mittal–Gupta, the paper's reference [21]): which
// road closures hurt a route the most? One replacement-path run ranks all
// of them.
//
//   $ ./examples/most_vital_edges
#include <cstdio>

#include "graph/generators.hpp"
#include "rp/vitality.hpp"

using namespace msrp;

int main() {
  Rng rng(7);
  const Graph g = gen::path_with_chords(40, 8, rng);
  const Vertex s = 0, t = 39;

  const auto vital = most_vital_edges(g, s, t, 5);
  std::printf("route %u -> %u on a chorded path (n=%u, m=%u)\n", s, t,
              g.num_vertices(), g.num_edges());
  std::printf("top-%zu most vital segments:\n", vital.size());
  for (const VitalEdge& ve : vital) {
    const auto [u, v] = g.endpoints(ve.edge);
    if (ve.vitality == kInfDist) {
      std::printf("  #%u (%u,%u): closing it DISCONNECTS the route\n", ve.position, u, v);
    } else {
      std::printf("  #%u (%u,%u): detour +%u (replacement length %u)\n", ve.position, u,
                  v, ve.vitality, ve.replacement);
    }
  }
  std::printf(
      "\nvitality(e) = d(s,t,e) - d(s,t); the k-most-vital-arcs problem is\n"
      "where the replacement-path literature began.\n");
  return 0;
}
