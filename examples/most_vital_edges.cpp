// Most vital edges (Malik–Mittal–Gupta, the paper's reference [21]): which
// road closures hurt a route the most? One replacement-path run ranks all
// of them.
//
// The ranking is served through the TOP_K_VITAL workload entry point —
// QueryService::vitality_batch() locally, or the VITALITY_BATCH wire
// opcode against a running msrp_serve --registry server:
//
//   $ ./examples/most_vital_edges
//   $ msrp_serve --registry --listen 7171 &
//   $ ./examples/most_vital_edges --connect 127.0.0.1:7171
//
// Both paths print identical rankings; in local mode the result is also
// cross-checked against the direct rp::most_vital_edges() computation the
// service reproduces.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "net/client.hpp"
#include "rp/vitality.hpp"
#include "service/query_service.hpp"
#include "service/workloads.hpp"

using namespace msrp;

int main(int argc, char** argv) {
  std::string connect;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--connect" && i + 1 < argc) {
      connect = argv[++i];
    } else {
      std::fprintf(stderr, "usage: most_vital_edges [--connect host:port]\n");
      return 2;
    }
  }

  Rng rng(7);
  const Graph g = gen::path_with_chords(40, 8, rng);
  const Vertex s = 0, t = 39;
  const std::vector<service::VitalityQuery> queries{{s, t, 5}};

  std::vector<service::VitalityResult> results;
  if (connect.empty()) {
    service::QueryService svc({.threads = 2});
    const auto oracle = svc.build(g, {s}, Config{});
    results = svc.vitality_batch(*oracle, queries);

    // The service answer is the rp::most_vital_edges ordering, served from
    // the oracle instead of a fresh solve — pin that here.
    const auto direct = most_vital_edges(g, s, t, 5);
    if (direct.size() != results[0].edges.size()) {
      std::fprintf(stderr, "error: service and direct rankings disagree\n");
      return 1;
    }
    for (std::size_t i = 0; i < direct.size(); ++i) {
      if (direct[i].edge != results[0].edges[i].edge ||
          direct[i].replacement != results[0].edges[i].replacement) {
        std::fprintf(stderr, "error: service and direct rankings disagree at %zu\n", i);
        return 1;
      }
    }
  } else {
    const std::size_t colon = connect.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "error: --connect needs host:port\n");
      return 2;
    }
    net::ClientOptions copts;
    copts.host = connect.substr(0, colon);
    copts.port = static_cast<std::uint16_t>(std::stoul(connect.substr(colon + 1)));
    copts.connect_retries = 10;
    net::Client client(copts);
    const net::RegisterAckFrame ack =
        client.register_graph(g.num_vertices(), g.edges(), std::vector<Vertex>{s});
    results = client.vitality_batch(queries, ack.digest);
  }

  const service::VitalityResult& top = results[0];
  std::printf("route %u -> %u on a chorded path (n=%u, m=%u)%s\n", s, t, g.num_vertices(),
              g.num_edges(), connect.empty() ? "" : " [served over TCP]");
  std::printf("top-%zu most vital segments:\n", top.edges.size());
  for (const service::VitalityEntry& ve : top.edges) {
    const auto [u, v] = g.endpoints(ve.edge);
    if (ve.replacement == kInfDist) {
      std::printf("  #%u (%u,%u): closing it DISCONNECTS the route\n", ve.position, u, v);
    } else {
      std::printf("  #%u (%u,%u): detour +%u (replacement length %u)\n", ve.position, u, v,
                  ve.replacement - top.base, ve.replacement);
    }
  }
  std::printf(
      "\nvitality(e) = d(s,t,e) - d(s,t); the k-most-vital-arcs problem is\n"
      "where the replacement-path literature began.\n");
  return 0;
}
