// CONGEST-model demonstration: distributed BFS, multi-source BFS (the
// distributed analogue of the paper's landmark preprocessing), and
// replacement-path recomputation after a link failure — with round and
// message accounting.
//
//   $ ./examples/congest_demo
#include <cstdio>

#include "congest/bfs.hpp"
#include "congest/replacement.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

using namespace msrp;
using namespace msrp::congest;

int main() {
  const Graph g = gen::grid(8, 8);
  std::printf("network: 8x8 grid, n=%u, m=%u, diameter=%u\n\n", g.num_vertices(),
              g.num_edges(), diameter(g));

  // Single-source BFS flood.
  const BfsOutcome bfs = distributed_bfs(g, 0);
  std::printf("distributed BFS from node 0:\n");
  std::printf("  rounds   : %u (eccentricity + 1 = %u)\n", bfs.rounds,
              eccentricity(g, 0) + 1);
  std::printf("  messages : %llu (<= 2m = %u)\n\n",
              static_cast<unsigned long long>(bfs.messages), 2 * g.num_edges());

  // Multi-source BFS: every node learns its nearest "landmark".
  const std::vector<Vertex> landmarks{0, 7, 56, 63, 27};
  const MultiSourceBfsOutcome ms = distributed_multi_source_bfs(g, landmarks);
  std::printf("multi-source BFS from %zu landmarks:\n", landmarks.size());
  std::printf("  rounds   : %u\n", ms.rounds);
  std::printf("  messages : %llu\n", static_cast<unsigned long long>(ms.messages));
  std::printf("  cluster map (nearest landmark per node):\n");
  for (Vertex r = 0; r < 8; ++r) {
    std::printf("    ");
    for (Vertex c = 0; c < 8; ++c) std::printf("%u ", ms.nearest[r * 8 + c]);
    std::printf("\n");
  }

  // Replacement paths across a failure, the distributed way.
  const Vertex s = 0, t = 63;
  const ReplacementOutcome rep = distributed_replacement_paths(g, s, t);
  std::printf("\nreplacement paths %u -> %u (one BFS per failed path edge):\n", s, t);
  std::printf("  path edges    : %zu\n", rep.path_edges.size());
  std::printf("  total rounds  : %u\n", rep.total_rounds);
  std::printf("  total messages: %llu\n", static_cast<unsigned long long>(rep.total_messages));
  std::printf("  d(s,t,e) per failed edge:");
  for (const Dist d : rep.avoiding) std::printf(" %u", d);
  std::printf("\n\nThe Theta(L * D) round bill above is what the centralized\n");
  std::printf("O~(m sqrt(n sigma) + sigma n^2) algorithm amortizes away.\n");
  return 0;
}
