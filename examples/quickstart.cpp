// Quickstart: build a small graph, solve MSRP for two sources, print the
// replacement distances for every (source, target, failed-edge) triple.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/msrp.hpp"
#include "graph/generators.hpp"

using namespace msrp;

int main() {
  // A 4x5 grid: 20 intersections, every edge a potential road closure.
  const Graph g = gen::grid(4, 5);
  std::printf("graph: %u vertices, %u edges (4x5 grid)\n\n", g.num_vertices(),
              g.num_edges());

  // Two sources; the solver computes d(s, t, e) for every s in sources,
  // every t, and every edge e on the canonical shortest s->t path.
  const std::vector<Vertex> sources{0, 19};
  const MsrpResult res = solve_msrp(g, sources);

  for (const Vertex s : sources) {
    std::printf("source %u:\n", s);
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      const auto row = res.row(s, t);
      if (row.empty()) continue;
      std::printf("  t=%-2u  d=%u  replacements:", t, res.shortest(s, t));
      std::uint32_t pos = 0;
      for (const EdgeId e : res.tree(s).path_edges(t)) {
        const auto [u, v] = g.endpoints(e);
        if (row[pos] == kInfDist) {
          std::printf("  -(%u,%u)->inf", u, v);
        } else {
          std::printf("  -(%u,%u)->%u", u, v, row[pos]);
        }
        ++pos;
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  // Arbitrary-edge queries resolve in O(1); off-path edges do not disturb
  // the canonical path.
  const EdgeId some_edge = g.find_edge(0, 1);
  std::printf("d(0, 19) = %u, avoiding edge (0,1): %u\n", res.shortest(0, 19),
              res.avoiding(0, 19, some_edge));
  return 0;
}
