// Vickrey pricing of network links — the application that started the
// replacement-path literature (Nisan–Ronen; Hershberger–Suri FOCS'01, cited
// as [20, 23] in the paper's introduction).
//
// Setting: each edge of a network is owned by a selfish agent. To route
// traffic from s to t along a shortest path, a mechanism designer pays each
// used edge its Vickrey price:
//
//   price(e) = d(s, t, e) - d(s, t)
//
// i.e. the marginal harm the network would suffer if the edge defected.
// Computing all prices for one (s, t) needs exactly the replacement paths;
// pricing for a fleet of source depots is the MSRP problem.
//
//   $ ./examples/vickrey_pricing
#include <cstdio>

#include "core/msrp.hpp"
#include "graph/generators.hpp"

using namespace msrp;

int main() {
  Rng rng(2020);
  const Graph g = gen::connected_avg_degree(64, 4.0, rng);
  const std::vector<Vertex> depots{0, 21, 42};
  const MsrpResult res = solve_msrp(g, depots);

  std::printf("Vickrey prices on shortest routes from %zu depots (n=%u, m=%u)\n\n",
              depots.size(), g.num_vertices(), g.num_edges());

  for (const Vertex s : depots) {
    // Price the route to the farthest reachable customer.
    Vertex t = s;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (res.shortest(s, v) != kInfDist && res.shortest(s, v) > res.shortest(s, t)) t = v;
    }
    const auto row = res.row(s, t);
    std::printf("depot %2u -> customer %2u (distance %u)\n", s, t, res.shortest(s, t));
    std::uint32_t pos = 0;
    Dist total_payment = 0;
    for (const EdgeId e : res.tree(s).path_edges(t)) {
      const auto [u, v] = g.endpoints(e);
      if (row[pos] == kInfDist) {
        std::printf("  edge (%2u,%2u): price = infinite (monopoly edge — a cut)\n", u, v);
      } else {
        const Dist price = row[pos] - res.shortest(s, t);
        total_payment = sat_add(total_payment, price);
        std::printf("  edge (%2u,%2u): price = %u  (detour would cost %u)\n", u, v, price,
                    row[pos]);
      }
      ++pos;
    }
    std::printf("  total premium over true cost: %u\n\n", total_payment);
  }

  std::printf(
      "Monopoly edges (bridges) command unbounded prices — the classical\n"
      "argument for building 2-edge-connected networks.\n");
  return 0;
}
