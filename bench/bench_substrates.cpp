// EXP-6 (DESIGN.md): substrate micro-benchmarks.
//
// Verifies the per-primitive contracts the paper's accounting relies on:
// O(m + n) BFS, O(1) LCA query after O(n log n) build, worst-case O(1)
// cuckoo-hash lookup (Lemma 5 / Lemma 6), and O((m + n) log n) single-pair
// replacement paths ([21, 20, 22]).
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "graph/generators.hpp"
#include "rp/single_pair.hpp"
#include "tree/bfs_tree.hpp"
#include "tree/lca.hpp"
#include "util/cuckoo_hash.hpp"
#include "util/rng.hpp"

namespace {

using namespace msrp;

Graph make_graph(std::int64_t n) {
  Rng rng(1234);
  return gen::connected_avg_degree(static_cast<Vertex>(n), 8.0, rng);
}

void BM_Bfs(benchmark::State& state) {
  const Graph g = make_graph(state.range(0));
  for (auto _ : state) {
    BfsTree t(g, 0);
    benchmark::DoNotOptimize(t.dist(g.num_vertices() - 1));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Bfs)->RangeMultiplier(2)->Range(1 << 10, 1 << 16)->Complexity(benchmark::oN);

void BM_LcaBuild(benchmark::State& state) {
  const Graph g = make_graph(state.range(0));
  const BfsTree t(g, 0);
  for (auto _ : state) {
    Lca lca(t);
    benchmark::DoNotOptimize(lca.lca(1, 2));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LcaBuild)->RangeMultiplier(4)->Range(1 << 10, 1 << 16)->Complexity();

void BM_LcaQuery(benchmark::State& state) {
  const Graph g = make_graph(state.range(0));
  const BfsTree t(g, 0);
  const Lca lca(t);
  Rng rng(9);
  const auto n = static_cast<Vertex>(g.num_vertices());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lca.lca(static_cast<Vertex>(rng.next_below(n)), static_cast<Vertex>(rng.next_below(n))));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LcaQuery)->RangeMultiplier(4)->Range(1 << 10, 1 << 16)->Complexity(benchmark::o1);

void BM_CuckooLookup(benchmark::State& state) {
  CuckooHash<Dist> h;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t k = 0; k < n; ++k) h.put(pack_key(k & 1023, k >> 10, 0), static_cast<Dist>(k));
  Rng rng(4);
  for (auto _ : state) {
    const std::uint64_t k = rng.next_below(n);
    benchmark::DoNotOptimize(h.find(pack_key(k & 1023, k >> 10, 0)));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CuckooLookup)->RangeMultiplier(4)->Range(1 << 10, 1 << 20)->Complexity(benchmark::o1);

void BM_UnorderedMapLookup(benchmark::State& state) {
  std::unordered_map<std::uint64_t, Dist> h;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t k = 0; k < n; ++k) h[pack_key(k & 1023, k >> 10, 0)] = static_cast<Dist>(k);
  Rng rng(4);
  for (auto _ : state) {
    const std::uint64_t k = rng.next_below(n);
    benchmark::DoNotOptimize(h.find(pack_key(k & 1023, k >> 10, 0)));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_UnorderedMapLookup)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 20)
    ->Complexity(benchmark::o1);

void BM_SinglePairRp(benchmark::State& state) {
  const Graph g = make_graph(state.range(0));
  const BfsTree ts(g, 0);
  // Farthest reachable vertex = longest path = hardest instance.
  Vertex t = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (ts.reachable(v) && ts.dist(v) > ts.dist(t)) t = v;
  }
  for (auto _ : state) {
    const SinglePairRp rp = replacement_paths(g, ts, t);
    benchmark::DoNotOptimize(rp.avoiding.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SinglePairRp)
    ->RangeMultiplier(2)
    ->Range(1 << 10, 1 << 15)
    ->Complexity(benchmark::oNLogN);

}  // namespace
