// EXP-9 — Parter–Peleg fault-tolerant subgraph sizes (the paper's related
// work [26]): |H| = O(sqrt(sigma) n^{3/2}) edges for multi-source
// single-fault BFS preservation, and the measured sqrt(sigma) scaling.
//
// Series report kept-edge counts as counters next to the theoretical
// budget; the densities where sparsification actually bites (m >> n^{3/2})
// are the interesting rows.
#include "bench_common.hpp"

#include <cmath>

#include "ftsub/ft_subgraph.hpp"

namespace {

using namespace msrp;
using namespace msrp::benchutil;

void BM_FtSubgraph_N(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  // Dense regime: avg degree ~ sqrt(n) so m ~ n^{3/2} and the bound matters.
  const Graph g = er_graph(n, std::sqrt(static_cast<double>(n)));
  const auto sources = spread_sources(g, 2);
  std::size_t kept = 0;
  for (auto _ : state) {
    const FtSubgraph ft = build_ft_subgraph(g, sources);
    kept = ft.kept_edges.size();
    benchmark::DoNotOptimize(kept);
  }
  state.counters["n"] = n;
  state.counters["m"] = g.num_edges();
  state.counters["kept"] = static_cast<double>(kept);
  state.counters["pp_budget"] =
      std::sqrt(2.0) * std::pow(static_cast<double>(n), 1.5);
}
BENCHMARK(BM_FtSubgraph_N)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_FtSubgraph_Sigma(benchmark::State& state) {
  const Vertex n = 256;
  const Graph g = er_graph(n, 16.0);
  const auto sigma = static_cast<std::uint32_t>(state.range(0));
  const auto sources = spread_sources(g, sigma);
  std::size_t kept = 0;
  for (auto _ : state) {
    const FtSubgraph ft = build_ft_subgraph(g, sources);
    kept = ft.kept_edges.size();
    benchmark::DoNotOptimize(kept);
  }
  state.counters["sigma"] = sigma;
  state.counters["m"] = g.num_edges();
  state.counters["kept"] = static_cast<double>(kept);
  state.counters["kept_per_sqrt_sigma"] =
      static_cast<double>(kept) / std::sqrt(static_cast<double>(sigma));
}
BENCHMARK(BM_FtSubgraph_Sigma)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace
