// EXP-2 — interpolation in sigma between the two endpoints the paper
// generalizes: Chechik–Cohen (sigma = 1, O~(m sqrt(n) + n^2)) and
// Bernstein–Karger (sigma = n, O~(mn + n^3)).
//
// At fixed n, Theorem 26 predicts cost growth ~ m sqrt(n) * sqrt(sigma) +
// n^2 * sigma: sublinear in sigma while the landmark phase dominates,
// linear once the per-source assembly does. The per_source counter (time /
// sigma) should therefore *fall* before flattening — the economy of scale
// over solving sigma independent SSRP instances, which is the paper's
// headline contribution.
#include "bench_common.hpp"

namespace {

using namespace msrp;
using namespace msrp::benchutil;

constexpr Vertex kN = 1024;

void run_sigma(benchmark::State& state, const Graph& g) {
  const auto sigma = static_cast<std::uint32_t>(state.range(0));
  const auto sources = spread_sources(g, sigma);
  for (auto _ : state) {
    benchmark::DoNotOptimize(output_cells(solve_msrp(g, sources), g));
  }
  state.counters["sigma"] = sigma;
  state.counters["n"] = g.num_vertices();
  // seconds of wall time per source: the economy-of-scale series.
  state.counters["per_source_s"] = benchmark::Counter(
      static_cast<double>(sigma),
      benchmark::Counter::kIsIterationInvariantRate | benchmark::Counter::kInvert);
}

void BM_SigmaSweep_ER(benchmark::State& state) {
  static const Graph g = er_graph(kN, 8.0);
  run_sigma(state, g);
}
// Sweep capped at sigma = 64 = n/16: beyond it the sampling probability
// p_0 saturates at 1 (every vertex a landmark) and the MMG landmark table
// degenerates to all-pairs work — see EXPERIMENTS.md for the discussion of
// where the Section 8 machinery would take over asymptotically.
BENCHMARK(BM_SigmaSweep_ER)
    ->RangeMultiplier(2)
    ->Range(1, 64)
    ->Unit(benchmark::kMillisecond);

void BM_SigmaSweep_Grid(benchmark::State& state) {
  static const Graph g = grid_graph(kN);
  run_sigma(state, g);
}
BENCHMARK(BM_SigmaSweep_Grid)
    ->RangeMultiplier(4)
    ->Range(1, 64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
