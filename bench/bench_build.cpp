// EXP-build — oracle construction cost and its thread scaling.
//
// The serving layer amortizes one build over millions of queries, but a
// cold-cache miss still pays the full solve, so build latency is the
// service's tail latency. Rows: wall-clock build time per workload at
// 1/2/4/8 build threads (UseRealTime — the work happens on the solver's
// pool). The parallel build is bit-identical to the sequential one (see
// tests/determinism_test.cpp), so these rows are pure speed, not accuracy,
// trade-offs.
//
// bench/run_benchmarks.sh (or the bench_json CMake target) serializes this
// suite to BENCH_build.json at the repo root for cross-PR tracking; the CI
// bench-smoke job runs only the *Small rows against a checked-in baseline.
#include "bench_common.hpp"

namespace {

using namespace msrp;
using namespace msrp::benchutil;

void run_build(benchmark::State& state, const Graph& g, std::uint32_t sigma,
               LandmarkRpMethod method) {
  const auto sources = spread_sources(g, sigma);
  Config cfg;
  cfg.landmark_rp = method;
  cfg.collect_phase_timings = false;
  cfg.build_threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    const MsrpResult res = solve_msrp(g, sources, cfg);
    benchmark::DoNotOptimize(res.stats().num_landmarks);
  }
  state.counters["n"] = g.num_vertices();
  state.counters["m"] = g.num_edges();
  state.counters["sigma"] = sigma;
  // Named build_threads, not threads: google-benchmark already emits a
  // built-in "threads" field per row, and duplicate JSON keys would poison
  // the committed BENCH/baseline files for strict parsers.
  state.counters["build_threads"] = static_cast<double>(state.range(0));
}

// The acceptance workload: a 10k-vertex grid (highest diameter, largest
// replacement table per source; assembly dominates and spreads across
// target chunks).
void BM_BuildGrid10k(benchmark::State& state) {
  static const Graph g = grid_graph(10000);
  run_build(state, g, 4, LandmarkRpMethod::kMmgPerPair);
}
BENCHMARK(BM_BuildGrid10k)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(1);

// Low-diameter ER: the MMG per-pair landmark table is the biggest phase.
void BM_BuildER4k(benchmark::State& state) {
  static const Graph g = er_graph(4096, 8.0);
  run_build(state, g, 4, LandmarkRpMethod::kMmgPerPair);
}
BENCHMARK(BM_BuildER4k)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(1);

// Long chorded path: deep canonical paths, mid diameter.
void BM_BuildChord8k(benchmark::State& state) {
  static const Graph g = chorded_path(8192);
  run_build(state, g, 4, LandmarkRpMethod::kMmgPerPair);
}
BENCHMARK(BM_BuildChord8k)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(1);

// The Bernstein–Karger pipeline (Sections 8.1–8.3): exercises the bucket-
// queue auxiliary Dijkstras and scratch arenas hardest (thousands of small
// aux graphs per build).
void BM_BuildBk(benchmark::State& state) {
  static const Graph g = er_graph(768, 8.0);
  run_build(state, g, 4, LandmarkRpMethod::kBkAuxGraphs);
}
BENCHMARK(BM_BuildBk)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Small rows for the CI bench-smoke regression guard (quick even in a
// throttled CI container; compared against bench/baseline_build.json).
void BM_BuildGridSmall(benchmark::State& state) {
  static const Graph g = grid_graph(2500);
  run_build(state, g, 4, LandmarkRpMethod::kMmgPerPair);
}
BENCHMARK(BM_BuildGridSmall)
    ->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
