// EXP-8 — ablating the paper's design choices.
//
//   a) Landmark-table method: MMG-per-pair (Section 3's building block)
//      versus the Bernstein–Karger auxiliary graphs (Section 8). The BK
//      route wins asymptotically; at practical sizes its aux-graph
//      constants dominate — the measured crossover justifies the library's
//      default.
//   b) The scaling trick: bucketed landmark hierarchy L_k versus forcing a
//      single dense level (emulated with near_scale large enough that every
//      edge is near — the O~(n sqrt(n)) per-target regime the paper's
//      Section 3 narrative warns about).
//   c) Oversampling: time vs exactness rate as the sampling constant decays
//      (Monte Carlo misses appear as overshoot against the brute oracle).
#include "bench_common.hpp"

#include "baseline/baselines.hpp"

namespace {

using namespace msrp;
using namespace msrp::benchutil;

constexpr std::uint32_t kSigma = 4;

// ---- (a) landmark-table method -------------------------------------------

void BM_LandmarkMethod(benchmark::State& state) {
  const Graph g = er_graph(static_cast<Vertex>(state.range(0)), 8.0);
  const auto sources = spread_sources(g, kSigma);
  Config cfg;
  cfg.landmark_rp = state.range(1) == 0 ? LandmarkRpMethod::kMmgPerPair
                                        : LandmarkRpMethod::kBkAuxGraphs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(output_cells(solve_msrp(g, sources, cfg), g));
  }
  state.counters["n"] = g.num_vertices();
  state.SetLabel(state.range(1) == 0 ? "mmg_per_pair" : "bk_aux_graphs");
}
BENCHMARK(BM_LandmarkMethod)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({512, 0})
    ->Args({512, 1})
    ->Unit(benchmark::kMillisecond);

// ---- (b) scaling trick ----------------------------------------------------

void BM_ScalingTrick(benchmark::State& state) {
  const Graph g = chorded_path(static_cast<Vertex>(state.range(0)));
  const auto sources = spread_sources(g, kSigma);
  Config cfg;
  if (state.range(1) == 1) {
    // Bucketless emulation: near threshold so large every edge is near,
    // i.e. no L_k hierarchy is ever consulted.
    cfg.exact = true;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(output_cells(solve_msrp(g, sources, cfg), g));
  }
  state.counters["n"] = g.num_vertices();
  state.SetLabel(state.range(1) == 0 ? "bucketed_Lk" : "all_near");
}
BENCHMARK(BM_ScalingTrick)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

// ---- (c) oversampling vs exactness ---------------------------------------

void BM_Oversample(benchmark::State& state) {
  const Graph g = chorded_path(512);
  const auto sources = spread_sources(g, kSigma);
  Config cfg;
  cfg.oversample = static_cast<double>(state.range(0)) / 4.0;
  cfg.near_scale = 1.0;
  MsrpResult res = solve_msrp(g, sources, cfg);
  for (auto _ : state) {
    res = solve_msrp(g, sources, cfg);
    benchmark::DoNotOptimize(output_cells(res, g));
  }
  // Exactness: fraction of cells equal to the brute-force oracle.
  const MsrpResult want = solve_msrp_brute_force(g, sources);
  std::uint64_t cells = 0, exact = 0;
  for (const Vertex s : sources) {
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      const auto wrow = want.row(s, t);
      const auto grow = res.row(s, t);
      for (std::size_t i = 0; i < wrow.size(); ++i) {
        ++cells;
        exact += (grow[i] == wrow[i]);
      }
    }
  }
  state.counters["oversample"] = cfg.oversample;
  state.counters["exact_pct"] =
      cells ? 100.0 * static_cast<double>(exact) / static_cast<double>(cells) : 100.0;
}
BENCHMARK(BM_Oversample)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace
