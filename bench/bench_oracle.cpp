// EXP-10 — sensitivity-oracle build/query costs (related work [4, 6, 19]):
// O(1) queries after an MSRP-time build, with Theta(output) space. Query
// latency must stay flat in n and sigma — the contract Bernstein–Karger /
// Gupta–Singh oracles promise and this library's MsrpResult layout delivers.
#include "bench_common.hpp"

#include "sensitivity/sensitivity_oracle.hpp"

namespace {

using namespace msrp;
using namespace msrp::benchutil;

void BM_OracleBuild(benchmark::State& state) {
  const Graph g = er_graph(static_cast<Vertex>(state.range(0)), 8.0);
  const auto sources = spread_sources(g, 4);
  for (auto _ : state) {
    const SensitivityOracle oracle(g, sources);
    benchmark::DoNotOptimize(oracle.size_cells());
  }
  state.counters["n"] = g.num_vertices();
}
BENCHMARK(BM_OracleBuild)->Arg(256)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_OracleQuery(benchmark::State& state) {
  const Graph g = er_graph(static_cast<Vertex>(state.range(0)), 8.0);
  const auto sources = spread_sources(g, 4);
  const SensitivityOracle oracle(g, sources);
  Rng rng(5);
  const Vertex n = g.num_vertices();
  const EdgeId m = g.num_edges();
  for (auto _ : state) {
    const Vertex s = sources[rng.next_below(sources.size())];
    const auto t = static_cast<Vertex>(rng.next_below(n));
    const auto e = static_cast<EdgeId>(rng.next_below(m));
    benchmark::DoNotOptimize(oracle.query(s, t, e));
  }
  state.counters["n"] = g.num_vertices();
  state.counters["cells"] = static_cast<double>(oracle.size_cells());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OracleQuery)->Arg(256)->Arg(1024)->Arg(4096)->Complexity(benchmark::o1);

}  // namespace
