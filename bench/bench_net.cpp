// EXP-net: loopback throughput and latency of the TCP serving layer.
//
// Rows (merged into BENCH_service.json by bench/run_benchmarks.sh so the
// remote-serving numbers sit next to the in-process ones they wrap):
//
//   * BM_NetRoundTrip/B — synchronous round trip of a B-query batch over
//     loopback: one frame out, one frame back. items/sec is queries/sec;
//     at B=1 real_time is the full request latency floor (frame encode,
//     syscalls, epoll dispatch, pool hop, reply).
//   * BM_NetPipelined/K — the same 512-query batches with K kept in
//     flight: measures how much the request ids + completion-order replies
//     recover the syscall/latency overhead.
//   * BM_NetPipelinedMultiLoop/L — the BM_NetPipelined/4 workload spread
//     over 4 connections against a server running L event loops (each
//     with its own SO_REUSEPORT listener). L=1 prices the loop-sharding
//     refactor itself; L>1 shows the accept/read/write fan-out on
//     multi-core hosts (a single-core container keeps the rows flat — the
//     one driver thread and the shared QueryService pool bound it; use
//     msrp_client --connections for an open-loop load test).
//   * BM_NetMultiTenant/T — 512-query pipelined batches round-robined
//     across T wire-registered oracles on one registry server: prices the
//     digest lookup + fair-dispatch hop against the single-tenant rows.
//   * BM_NetVitality/B — synchronous VITALITY_BATCH round trips of B
//     top-k-most-vital queries: each answer walks the canonical path and
//     sorts its edges, so the row prices the heaviest per-query assembly
//     the v3 opcodes added, plus the variable-length reply encode.
//   * BM_NetKFail/B — synchronous KFAIL_BATCH round trips with |F|
//     cycling 0/1/2 per query: one third base reads, one third oracle
//     rows, one third bounded BFS of G - F on the server pool — the
//     worst-case mix a resilience audit sends.
//
// The deltas against BM_QueryBatch (same service, no socket) price the
// network layer itself.
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "registry/oracle_registry.hpp"
#include "service/query_gen.hpp"
#include "service/query_service.hpp"
#include "service/workloads.hpp"

namespace msrp {
namespace {

constexpr Vertex kN = 1000;
constexpr std::uint32_t kSigma = 8;

service::QueryService& net_service() {
  static service::QueryService svc({.threads = 2});
  return svc;
}

const std::shared_ptr<const service::Snapshot>& net_oracle() {
  static const std::shared_ptr<const service::Snapshot> snap = [] {
    const Graph g = benchutil::er_graph(kN, 8.0);
    return net_service().build(g, benchutil::spread_sources(g, kSigma));
  }();
  return snap;
}

std::vector<service::Query> make_batch(std::size_t count, std::uint64_t seed) {
  const service::Snapshot& oracle = *net_oracle();
  Rng rng(seed);
  return service::random_query_batch(oracle.sources(), oracle.num_vertices(),
                                     oracle.num_edges(), count, rng);
}

std::vector<service::VitalityQuery> make_vitality_batch(std::size_t count,
                                                        std::uint64_t seed) {
  const service::Snapshot& oracle = *net_oracle();
  Rng rng(seed);
  std::vector<service::VitalityQuery> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({oracle.sources()[rng.next_below(oracle.num_sources())],
                   static_cast<Vertex>(rng.next_below(oracle.num_vertices())),
                   1 + static_cast<std::uint32_t>(rng.next_below(8))});
  }
  return out;
}

/// |F| cycles 0/1/2 so each batch carries the full k-fail answer mix:
/// base reads, single-failure oracle rows, and two-failure bounded BFS.
std::vector<service::KFailQuery> make_kfail_batch(std::size_t count, std::uint64_t seed) {
  const service::Snapshot& oracle = *net_oracle();
  Rng rng(seed);
  std::vector<service::KFailQuery> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    service::KFailQuery q{oracle.sources()[rng.next_below(oracle.num_sources())],
                          static_cast<Vertex>(rng.next_below(oracle.num_vertices())),
                          {}};
    while (q.fails.size() < i % 3) {
      const EdgeId e = static_cast<EdgeId>(rng.next_below(oracle.num_edges()));
      if (q.fails.empty() || q.fails.front() != e) q.fails.push_back(e);
    }
    out.push_back(std::move(q));
  }
  return out;
}

/// Loopback server shared by all rows; spawned on first use, reaped at
/// process exit by the static destructor ordering (server after service).
struct LoopbackServer {
  net::Server server;
  std::thread thread;

  LoopbackServer() : server(net_service(), net_oracle()) {
    thread = std::thread([this] { server.run(); });
  }
  ~LoopbackServer() {
    server.shutdown();
    thread.join();
  }
};

net::ClientOptions loopback_options() {
  static LoopbackServer loopback;
  net::ClientOptions copts;
  copts.port = loopback.server.port();
  copts.connect_retries = 10;
  return copts;
}

void BM_NetRoundTrip(benchmark::State& state) {
  if (!net::Server::supported()) {
    state.SkipWithError("epoll serving unsupported on this platform");
    return;
  }
  net::Client client(loopback_options());
  const auto batch = make_batch(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    auto answers = client.query_batch(batch);
    benchmark::DoNotOptimize(answers.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_NetRoundTrip)->Arg(1)->Arg(64)->Arg(1024)->Arg(16384)->UseRealTime();

void BM_NetPipelined(benchmark::State& state) {
  if (!net::Server::supported()) {
    state.SkipWithError("epoll serving unsupported on this platform");
    return;
  }
  const std::size_t inflight = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBatchSize = 512;
  net::Client client(loopback_options());
  const auto batch = make_batch(kBatchSize, 8);
  for (auto _ : state) {
    while (client.inflight() < inflight) client.send(batch);
    auto got = client.wait_any();  // one completion per iteration
    benchmark::DoNotOptimize(got.answers.data());
  }
  while (client.inflight() > 0) client.wait_any();  // drain outside the timer
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatchSize));
}
BENCHMARK(BM_NetPipelined)->Arg(1)->Arg(4)->Arg(16)->UseRealTime();

void BM_NetPipelinedMultiLoop(benchmark::State& state) {
  if (!net::Server::supported()) {
    state.SkipWithError("epoll serving unsupported on this platform");
    return;
  }
  const unsigned loops = static_cast<unsigned>(state.range(0));
  constexpr std::size_t kConns = 4;
  constexpr std::size_t kInflightPerConn = 4;
  constexpr std::size_t kBatchSize = 512;

  // Dedicated server per row (the shared LoopbackServer is single-loop).
  net::ServerOptions sopts;
  sopts.loops = loops;
  net::Server server(net_service(), net_oracle(), sopts);
  std::thread thread([&server] { server.run(); });

  net::ClientOptions copts;
  copts.port = server.port();
  copts.connect_retries = 10;
  std::vector<std::unique_ptr<net::Client>> clients;
  for (std::size_t c = 0; c < kConns; ++c) {
    clients.push_back(std::make_unique<net::Client>(copts));
  }
  const auto batch = make_batch(kBatchSize, 9);

  std::size_t next = 0;
  for (auto _ : state) {
    for (auto& c : clients) {
      while (c->inflight() < kInflightPerConn) c->send(batch);
    }
    auto got = clients[next++ % kConns]->wait_any();  // one completion/iter
    benchmark::DoNotOptimize(got.answers.data());
  }
  for (auto& c : clients) {
    while (c->inflight() > 0) c->wait_any();  // drain outside the timer
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatchSize));
  clients.clear();
  server.shutdown();
  thread.join();
}
BENCHMARK(BM_NetPipelinedMultiLoop)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

/// Registry-enabled loopback server for the multi-tenant row; separate
/// from LoopbackServer so the single-tenant rows keep pricing the bare
/// server (no dispatcher in their path).
struct RegistryLoopbackServer {
  registry::OracleRegistry registry;
  net::Server server;
  std::thread thread;

  RegistryLoopbackServer()
      : registry(net_service()), server(net_service(), net_oracle(), &registry, {}) {
    thread = std::thread([this] { server.run(); });
  }
  ~RegistryLoopbackServer() {
    server.shutdown();
    thread.join();
  }
};

void BM_NetMultiTenant(benchmark::State& state) {
  if (!net::Server::supported()) {
    state.SkipWithError("epoll serving unsupported on this platform");
    return;
  }
  static RegistryLoopbackServer loopback;
  net::ClientOptions copts;
  copts.port = loopback.server.port();
  copts.connect_retries = 10;
  net::Client client(copts);

  const std::size_t tenants = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBatchSize = 512;
  constexpr std::size_t kInflight = 4;
  std::vector<std::uint64_t> digests;
  std::vector<std::vector<service::Query>> batches;
  for (std::size_t i = 0; i < tenants; ++i) {
    const Graph g = benchutil::er_graph(400 + 16 * static_cast<Vertex>(i), 6.0);
    const auto sources = benchutil::spread_sources(g, 4);
    std::vector<std::pair<Vertex, Vertex>> edges;
    edges.reserve(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) edges.push_back(g.endpoints(e));
    const auto ack = client.register_graph(g.num_vertices(), edges, sources);
    Rng rng(90 + i);
    digests.push_back(ack.digest);
    batches.push_back(service::random_query_batch(ack.sources, ack.num_vertices,
                                                  ack.num_edges, kBatchSize, rng));
  }

  std::size_t next = 0;
  for (auto _ : state) {
    while (client.inflight() < kInflight) {
      client.send(batches[next % tenants], digests[next % tenants]);
      ++next;
    }
    auto got = client.wait_any();
    benchmark::DoNotOptimize(got.answers.data());
  }
  while (client.inflight() > 0) client.wait_any();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatchSize));
}
BENCHMARK(BM_NetMultiTenant)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_NetVitality(benchmark::State& state) {
  if (!net::Server::supported()) {
    state.SkipWithError("epoll serving unsupported on this platform");
    return;
  }
  net::Client client(loopback_options());
  const auto batch = make_vitality_batch(static_cast<std::size_t>(state.range(0)), 17);
  for (auto _ : state) {
    auto results = client.vitality_batch(batch);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_NetVitality)->Arg(64)->Arg(1024)->UseRealTime();

void BM_NetKFail(benchmark::State& state) {
  if (!net::Server::supported()) {
    state.SkipWithError("epoll serving unsupported on this platform");
    return;
  }
  net::Client client(loopback_options());
  const auto batch = make_kfail_batch(static_cast<std::size_t>(state.range(0)), 18);
  for (auto _ : state) {
    auto answers = client.kfail_batch(batch);
    benchmark::DoNotOptimize(answers.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_NetKFail)->Arg(64)->Arg(1024)->UseRealTime();

}  // namespace
}  // namespace msrp
