// EXP-7 — CONGEST round complexity (the venue-model substitution).
//
// Distributed BFS floods complete in eccentricity + 1 rounds regardless of
// n; distributed replacement-path recomputation costs Theta(L * D) rounds.
// The series sweep low-diameter (ER) and high-diameter (grid, path)
// topologies to show rounds tracking diameter, not size — and how brutal
// the L * D bill becomes exactly where the paper's centralized algorithm is
// most interesting.
#include "bench_common.hpp"

#include "congest/bfs.hpp"
#include "congest/landmark_sketch.hpp"
#include "congest/replacement.hpp"
#include "graph/properties.hpp"

namespace {

using namespace msrp;
using namespace msrp::benchutil;
using namespace msrp::congest;

template <typename MakeGraph>
void run_bfs(benchmark::State& state, MakeGraph make) {
  const Graph g = make(static_cast<Vertex>(state.range(0)));
  BfsOutcome out;
  for (auto _ : state) {
    out = distributed_bfs(g, 0);
    benchmark::DoNotOptimize(out.rounds);
  }
  state.counters["n"] = g.num_vertices();
  state.counters["rounds"] = out.rounds;
  state.counters["messages"] = static_cast<double>(out.messages);
  state.counters["ecc"] = eccentricity(g, 0);
}

void BM_CongestBfs_ER(benchmark::State& state) {
  run_bfs(state, [](Vertex n) { return er_graph(n, 8.0); });
}
BENCHMARK(BM_CongestBfs_ER)->RangeMultiplier(4)->Range(256, 4096)->Unit(benchmark::kMillisecond);

void BM_CongestBfs_Grid(benchmark::State& state) {
  run_bfs(state, [](Vertex n) { return grid_graph(n); });
}
BENCHMARK(BM_CongestBfs_Grid)->RangeMultiplier(4)->Range(256, 4096)->Unit(benchmark::kMillisecond);

void BM_CongestMultiSource(benchmark::State& state) {
  const Graph g = grid_graph(1024);
  const auto sigma = static_cast<std::uint32_t>(state.range(0));
  const auto sources = spread_sources(g, sigma);
  MultiSourceBfsOutcome out;
  for (auto _ : state) {
    out = distributed_multi_source_bfs(g, sources);
    benchmark::DoNotOptimize(out.rounds);
  }
  state.counters["sigma"] = sigma;
  state.counters["rounds"] = out.rounds;
  state.counters["messages"] = static_cast<double>(out.messages);
}
BENCHMARK(BM_CongestMultiSource)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

// Pipelined landmark floods: the distributed analogue of the paper's
// Section 5 preprocessing. Rounds should scale like |L| + D, NOT |L| * D.
void BM_CongestLandmarkSketch(benchmark::State& state) {
  const Graph g = grid_graph(1024);  // D = 62
  const auto num_l = static_cast<std::uint32_t>(state.range(0));
  const auto landmarks = spread_sources(g, num_l, 3);
  LandmarkSketchOutcome out;
  for (auto _ : state) {
    out = distributed_landmark_sketch(g, landmarks);
    benchmark::DoNotOptimize(out.rounds);
  }
  state.counters["landmarks"] = num_l;
  state.counters["rounds"] = out.rounds;
  state.counters["sequential_rounds"] = static_cast<double>(num_l) * (diameter(g) + 1);
  state.counters["messages"] = static_cast<double>(out.messages);
}
BENCHMARK(BM_CongestLandmarkSketch)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_CongestReplacement(benchmark::State& state) {
  const Graph g = chorded_path(static_cast<Vertex>(state.range(0)));
  const Vertex t = g.num_vertices() - 1;
  ReplacementOutcome out;
  for (auto _ : state) {
    out = distributed_replacement_paths(g, 0, t);
    benchmark::DoNotOptimize(out.total_rounds);
  }
  state.counters["n"] = g.num_vertices();
  state.counters["path_len"] = static_cast<double>(out.path_edges.size());
  state.counters["total_rounds"] = out.total_rounds;
  state.counters["total_messages"] = static_cast<double>(out.total_messages);
}
BENCHMARK(BM_CongestReplacement)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

}  // namespace
