// EXP-obs: cost of the observability layer on the serving hot path.
//
// Rows (merged into BENCH_service.json by bench/run_benchmarks.sh):
//
//   * BM_CounterAdd — one striped Counter::add: the unit every per-frame
//     counter bump costs. Budget: well under 20 ns.
//   * BM_HistogramRecord — one Histogram::record (bucket index + two
//     relaxed fetch_adds on the caller's stripe): the unit each of the
//     four per-stage stamps costs. Budget: well under 20 ns.
//   * BM_MetricsOverhead/0 vs /1 — a tight loop answering the arithmetic
//     a hot serving frame does, without (/0) and with (/1) the full
//     per-request instrumentation (counter bump + four stage records +
//     trace-ring sample tick). The delta prices "metrics on" end to end;
//     it must stay in the low tens of nanoseconds so BM_NetPipelined is
//     unmoved within noise.
//   * BM_CounterAddContended/T — T threads hammering ONE counter: shows
//     the stripes keeping cross-thread interference flat (compare the
//     per-op time against BM_CounterAdd rather than expecting perfect
//     scaling — the stripe count bounds the separation).
//   * BM_Snapshot — full MetricsRegistry::snapshot() with a realistic
//     series population: the read-side cost a /metrics scrape pays.
//     Milliseconds-scale budget; it shares no locks with record paths.
#include <cstdint>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace msrp {
namespace {

obs::MetricsRegistry& bench_registry() {
  static obs::MetricsRegistry reg;
  return reg;
}

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter* c = bench_registry().counter("bench.counter");
  for (auto _ : state) {
    c->add();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram* h = bench_registry().histogram("bench.hist");
  std::uint64_t ns = 1;
  for (auto _ : state) {
    // A cheap LCG keeps the recorded value (and thus the bucket) varying,
    // so the row prices bucket_index too, not one hot cache line.
    ns = ns * 2862933555777941757ull + 3037000493ull;
    h->record(ns % 1'000'000);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_MetricsOverhead(benchmark::State& state) {
  const bool instrumented = state.range(0) != 0;
  obs::Counter* batches = bench_registry().counter("bench.batches");
  obs::Histogram* decode = bench_registry().histogram("bench.stage", "decode");
  obs::Histogram* queue = bench_registry().histogram("bench.stage", "queue");
  obs::Histogram* execute = bench_registry().histogram("bench.stage", "execute");
  obs::Histogram* flush = bench_registry().histogram("bench.stage", "flush");
  obs::TraceRing ring(/*sample_every_n=*/1024);
  std::uint64_t acc = 0;
  std::uint64_t fake_ns = 100;
  for (auto _ : state) {
    // Stand-in for a frame's real work, kept tiny so the instrumentation
    // delta dominates the row instead of drowning in it.
    acc = acc * 6364136223846793005ull + 1442695040888963407ull;
    fake_ns = (acc >> 40) + 1;
    if (instrumented) {
      batches->add();
      decode->record(fake_ns);
      queue->record(fake_ns);
      execute->record(fake_ns);
      flush->record(fake_ns);
      benchmark::DoNotOptimize(ring.sample());
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsOverhead)->Arg(0)->Arg(1);

void BM_CounterAddContended(benchmark::State& state) {
  obs::Counter* c = bench_registry().counter("bench.contended");
  for (auto _ : state) {
    c->add();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAddContended)->Threads(1)->Threads(4)->Threads(8);

void BM_Snapshot(benchmark::State& state) {
  obs::MetricsRegistry reg;
  for (int i = 0; i < 64; ++i) {
    reg.counter("snap.counter." + std::to_string(i))->add(static_cast<std::uint64_t>(i));
  }
  for (int i = 0; i < 8; ++i) reg.gauge("snap.gauge." + std::to_string(i))->set(i);
  for (const char* stage : {"decode", "queue", "execute", "flush"}) {
    obs::Histogram* h = reg.histogram("snap.latency", stage);
    for (std::uint64_t ns = 1; ns < 1'000'000; ns *= 3) h->record(ns);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.snapshot());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Snapshot);

}  // namespace
}  // namespace msrp
