#!/usr/bin/env python3
"""Coarse benchmark regression guard for CI.

Compares a fresh google-benchmark JSON report against a checked-in baseline
and fails when any row shared by both regresses by more than --max-ratio
(default 2x). The threshold is deliberately loose: CI machines differ from
the machine that recorded the baseline, so this only catches catastrophic
regressions (an accidental O(n) -> O(n^2), a build that went sequential),
not few-percent drift.

Usage: check_bench_regression.py --baseline bench/baseline_build.json \
           --current BENCH_build.json [--max-ratio 2.0]
"""
import argparse
import json
import sys


def load_rows(path):
    with open(path) as f:
        report = json.load(f)
    rows = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue  # skip aggregates
        rows[b["name"]] = float(b["real_time"])
    return rows


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--max-ratio", type=float, default=2.0)
    args = ap.parse_args()

    baseline = load_rows(args.baseline)
    current = load_rows(args.current)
    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("error: no benchmark rows shared between baseline and current", file=sys.stderr)
        return 2

    failed = False
    for name in shared:
        ratio = current[name] / baseline[name] if baseline[name] > 0 else float("inf")
        status = "OK " if ratio <= args.max_ratio else "FAIL"
        if ratio > args.max_ratio:
            failed = True
        print(f"{status} {name}: baseline={baseline[name]:.1f} current={current[name]:.1f} "
              f"ratio={ratio:.2f} (limit {args.max_ratio:.2f})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
