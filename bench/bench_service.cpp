// EXP-service: batched query throughput of the service layer.
//
// Rows: queries/sec for a fixed 100k-query batch as the worker-thread count
// grows (the tentpole scaling claim: >= 2x at 4 threads on multicore),
// snapshot vs. text (de)serialization speed, cold-load-to-first-answer for
// the v1 varint decoder vs. the v2 zero-copy mmap path on a high-diameter
// grid (the largest cells payload per vertex), and sync vs. async batch
// serving: submit_batch() latency on a cold cache plus end-to-end
// throughput when batches overlap on the pool.
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/serialize.hpp"
#include "service/query_gen.hpp"
#include "service/query_service.hpp"
#include "service/shard_router.hpp"

namespace msrp {
namespace {

constexpr Vertex kN = 1000;
constexpr std::uint32_t kSigma = 8;
constexpr std::size_t kBatch = 100'000;

const service::Snapshot& demo_oracle() {
  static const service::Snapshot snap = [] {
    const Graph g = benchutil::er_graph(kN, 8.0);
    const MsrpResult res = solve_msrp(g, benchutil::spread_sources(g, kSigma));
    return service::Snapshot::capture(res);
  }();
  return snap;
}

std::vector<service::Query> make_batch(const service::Snapshot& oracle, std::size_t count,
                                       std::uint64_t seed) {
  Rng rng(seed);
  return service::random_query_batch(oracle.sources(), oracle.num_vertices(),
                                     oracle.num_edges(), count, rng);
}

std::vector<service::Query> demo_batch(const service::Snapshot& oracle) {
  return make_batch(oracle, kBatch, 99);
}

void BM_QueryBatch(benchmark::State& state) {
  const service::Snapshot& oracle = demo_oracle();
  const std::vector<service::Query> batch = demo_batch(oracle);
  service::QueryService svc({.threads = static_cast<unsigned>(state.range(0))});
  for (auto _ : state) {
    auto answers = svc.query_batch(oracle, batch);
    benchmark::DoNotOptimize(answers.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_QueryBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Multi-process flavour of the row above: the same 100k batch routed to
// `shards` forked workers over shared-memory SPSC rings. Includes the full
// routing overhead (validate, bucket, ring round-trips, merge); segment
// placement and worker spawn happen once, outside the timed region.
void BM_QueryBatchSharded(benchmark::State& state) {
  if (!service::ShardRouter::supported()) {
    state.SkipWithError("multi-process sharding unsupported on this platform");
    return;
  }
  const service::Snapshot& oracle = demo_oracle();
  const std::vector<service::Query> batch = demo_batch(oracle);
  service::ShardRouterOptions opts;
  opts.shards = static_cast<unsigned>(state.range(0));
  service::ShardRouter router(oracle, opts);
  for (auto _ : state) {
    auto answers = router.query_batch(batch);
    benchmark::DoNotOptimize(answers.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_QueryBatchSharded)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// ------------------------------------------------------- cold-load latency ---

// The cold-load rows use the highest-diameter workload: a square grid's
// replacement table has ~n*sqrt(n) cells per source, so the v1 per-cell
// varint decode dominates its load while the v2 path only touches the
// O(n + m) metadata.
struct ColdLoadFiles {
  std::string v1_path;
  std::string v2_path;
  service::Query probe;  // one valid query for "to-first-answer"
};

const ColdLoadFiles& cold_load_files() {
  static const ColdLoadFiles files = [] {
    const Graph g = benchutil::grid_graph(3600);
    const auto sources = benchutil::spread_sources(g, 4);
    const MsrpResult res = solve_msrp(g, sources);
    const service::Snapshot snap = service::Snapshot::capture(res);
    const std::string dir = std::filesystem::temp_directory_path().string();
    ColdLoadFiles f;
    f.v1_path = dir + "/msrp_bench_cold.v1.snap";
    f.v2_path = dir + "/msrp_bench_cold.v2.snap";
    snap.save(f.v1_path, service::SnapshotFormat::kV1);
    snap.save(f.v2_path, service::SnapshotFormat::kV2);
    f.probe = {sources[0], g.num_vertices() - 1, 0};
    std::printf("# cold-load files: v1=%zu bytes v2=%zu bytes\n",
                std::filesystem::file_size(f.v1_path), std::filesystem::file_size(f.v2_path));
    return f;
  }();
  return files;
}

void cold_load_iteration(benchmark::State& state, const std::string& path,
                         const service::Snapshot::LoadOptions& opts) {
  const service::Query probe = cold_load_files().probe;
  for (auto _ : state) {
    const service::Snapshot snap = service::Snapshot::load(path, opts);
    benchmark::DoNotOptimize(snap.avoiding(probe.s, probe.t, probe.e));
  }
}

void BM_ColdLoadToFirstAnswerV1(benchmark::State& state) {
  cold_load_iteration(state, cold_load_files().v1_path, {});
}
BENCHMARK(BM_ColdLoadToFirstAnswerV1)->Unit(benchmark::kMillisecond);

void BM_ColdLoadToFirstAnswerV2(benchmark::State& state) {
  cold_load_iteration(state, cold_load_files().v2_path, {.verify_cells = true});
}
BENCHMARK(BM_ColdLoadToFirstAnswerV2)->Unit(benchmark::kMillisecond);

void BM_ColdLoadToFirstAnswerV2Mmap(benchmark::State& state) {
  cold_load_iteration(state, cold_load_files().v2_path,
                      {.use_mmap = true, .verify_cells = false});
}
BENCHMARK(BM_ColdLoadToFirstAnswerV2Mmap)->Unit(benchmark::kMillisecond);

// ----------------------------------------------------------- async serving ---

// Submit latency on a cold cache: the measured region is ONLY the
// submit_batch() call — the MSRP solve it triggers runs on the pool and is
// drained outside the timer. A fresh service per iteration keeps the cache
// cold.
void BM_AsyncSubmitColdCache(benchmark::State& state) {
  const Graph g = benchutil::er_graph(400, 6.0, /*seed=*/1234);
  const std::vector<Vertex> sources = benchutil::spread_sources(g, 4);
  std::vector<service::Query> queries;
  for (Vertex t = 0; t < g.num_vertices(); ++t) queries.push_back({sources[0], t, 0});
  for (auto _ : state) {
    state.PauseTiming();
    {
      service::QueryService svc({.threads = 4});
      state.ResumeTiming();
      auto fut = svc.submit_batch(g, sources, Config{}, queries);
      state.PauseTiming();
      benchmark::DoNotOptimize(fut.get().answers.data());
    }  // service teardown stays outside the timed region
    state.ResumeTiming();
  }
}
BENCHMARK(BM_AsyncSubmitColdCache)->Unit(benchmark::kMicrosecond)->Iterations(8);

// Sync vs. async end-to-end throughput for a burst of batches: the sync
// caller runs them lockstep; the async caller submits all of them and
// drains, letting independent batches overlap on the pool.
constexpr std::size_t kBurst = 8;
constexpr std::size_t kBurstBatch = 25'000;

void BM_BurstSync(benchmark::State& state) {
  const service::Snapshot& oracle = demo_oracle();
  service::QueryService svc({.threads = 4});
  std::vector<std::vector<service::Query>> batches;
  for (std::size_t b = 0; b < kBurst; ++b) {
    batches.push_back(make_batch(oracle, kBurstBatch, 1000 + b));
  }
  for (auto _ : state) {
    for (const auto& batch : batches) {
      auto answers = svc.query_batch(oracle, batch);
      benchmark::DoNotOptimize(answers.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBurst * kBurstBatch));
}
BENCHMARK(BM_BurstSync)->UseRealTime();

void BM_BurstAsync(benchmark::State& state) {
  service::QueryService svc({.threads = 4});
  // Alias the static demo oracle (non-owning) so sync and async rows serve
  // the exact same object instead of paying a second solve at startup.
  std::shared_ptr<const service::Snapshot> oracle(std::shared_ptr<const void>{},
                                                  &demo_oracle());
  std::vector<std::vector<service::Query>> batches;
  for (std::size_t b = 0; b < kBurst; ++b) {
    batches.push_back(make_batch(*oracle, kBurstBatch, 1000 + b));
  }
  for (auto _ : state) {
    std::vector<std::future<service::BatchResult>> futures;
    futures.reserve(kBurst);
    for (const auto& batch : batches) futures.push_back(svc.submit_batch(oracle, batch));
    for (auto& fut : futures) benchmark::DoNotOptimize(fut.get().answers.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBurst * kBurstBatch));
}
BENCHMARK(BM_BurstAsync)->UseRealTime();

// -------------------------------------------------------- (de)serialization ---

void snapshot_round_trip(benchmark::State& state, service::SnapshotFormat format) {
  const service::Snapshot& oracle = demo_oracle();
  std::stringstream ss;
  oracle.write(ss, format);
  const std::string image = ss.str();
  for (auto _ : state) {
    std::stringstream in(image);
    auto loaded = service::Snapshot::read(in);
    benchmark::DoNotOptimize(loaded.num_vertices());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(image.size()));
}

void BM_SnapshotRoundTripV1(benchmark::State& state) {
  snapshot_round_trip(state, service::SnapshotFormat::kV1);
}
BENCHMARK(BM_SnapshotRoundTripV1);

void BM_SnapshotRoundTripV2(benchmark::State& state) {
  snapshot_round_trip(state, service::SnapshotFormat::kV2);
}
BENCHMARK(BM_SnapshotRoundTripV2);

void BM_TextRoundTrip(benchmark::State& state) {
  const Graph g = benchutil::er_graph(kN, 8.0);
  const MsrpResult res = solve_msrp(g, benchutil::spread_sources(g, kSigma));
  std::stringstream ss;
  write_result(ss, res);
  const std::string image = ss.str();
  for (auto _ : state) {
    std::stringstream in(image);
    auto loaded = SerializedResult::read(in);
    benchmark::DoNotOptimize(loaded.num_vertices());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(image.size()));
}
BENCHMARK(BM_TextRoundTrip);

}  // namespace
}  // namespace msrp
