// EXP-service: batched query throughput of the service layer.
//
// Rows: queries/sec for a fixed 100k-query batch as the worker-thread count
// grows (the tentpole scaling claim: >= 2x at 4 threads on multicore), plus
// snapshot vs. text (de)serialization speed for the same oracle.
#include <sstream>

#include "bench_common.hpp"
#include "core/serialize.hpp"
#include "service/query_service.hpp"

namespace msrp {
namespace {

constexpr Vertex kN = 1000;
constexpr std::uint32_t kSigma = 8;
constexpr std::size_t kBatch = 100'000;

const service::Snapshot& demo_oracle() {
  static const service::Snapshot snap = [] {
    const Graph g = benchutil::er_graph(kN, 8.0);
    const MsrpResult res = solve_msrp(g, benchutil::spread_sources(g, kSigma));
    return service::Snapshot::capture(res);
  }();
  return snap;
}

std::vector<service::Query> demo_batch(const service::Snapshot& oracle) {
  Rng rng(99);
  std::vector<service::Query> batch;
  batch.reserve(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    batch.push_back({oracle.sources()[rng.next_below(oracle.num_sources())],
                     static_cast<Vertex>(rng.next_below(oracle.num_vertices())),
                     static_cast<EdgeId>(rng.next_below(oracle.num_edges()))});
  }
  return batch;
}

void BM_QueryBatch(benchmark::State& state) {
  const service::Snapshot& oracle = demo_oracle();
  const std::vector<service::Query> batch = demo_batch(oracle);
  service::QueryService svc({.threads = static_cast<unsigned>(state.range(0))});
  for (auto _ : state) {
    auto answers = svc.query_batch(oracle, batch);
    benchmark::DoNotOptimize(answers.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_QueryBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_SnapshotRoundTrip(benchmark::State& state) {
  const service::Snapshot& oracle = demo_oracle();
  std::stringstream ss;
  oracle.write(ss);
  const std::string image = ss.str();
  for (auto _ : state) {
    std::stringstream in(image);
    auto loaded = service::Snapshot::read(in);
    benchmark::DoNotOptimize(loaded.num_vertices());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(image.size()));
}
BENCHMARK(BM_SnapshotRoundTrip);

void BM_TextRoundTrip(benchmark::State& state) {
  const Graph g = benchutil::er_graph(kN, 8.0);
  const MsrpResult res = solve_msrp(g, benchutil::spread_sources(g, kSigma));
  std::stringstream ss;
  write_result(ss, res);
  const std::string image = ss.str();
  for (auto _ : state) {
    std::stringstream in(image);
    auto loaded = SerializedResult::read(in);
    benchmark::DoNotOptimize(loaded.num_vertices());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(image.size()));
}
BENCHMARK(BM_TextRoundTrip);

}  // namespace
}  // namespace msrp
