// EXP-5 — the Section 9 lower-bound construction, measured.
//
// Theorem 28: BMM(n, m) reduces to sqrt(n / sigma) MSRP instances. The
// reduction is of course slower than multiplying directly — that is the
// point: it proves a *lower* bound, i.e. the reduction overhead bounds how
// fast MSRP could possibly be. The series report direct combinatorial
// multiply vs the MSRP route, plus gadget sizes.
#include "bench_common.hpp"

#include "bmm/multiply.hpp"
#include "bmm/reduction.hpp"

namespace {

using namespace msrp;
using namespace msrp::bmm;

void BM_DirectNaive(benchmark::State& state) {
  Rng rng(1);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const BoolMatrix a = BoolMatrix::random(n, 0.2, rng);
  const BoolMatrix b = BoolMatrix::random(n, 0.2, rng);
  for (auto _ : state) benchmark::DoNotOptimize(multiply_naive(a, b).popcount());
  state.counters["n"] = n;
}
BENCHMARK(BM_DirectNaive)->Arg(32)->Arg(64)->Arg(128)->Unit(benchmark::kMicrosecond);

void BM_DirectBitset(benchmark::State& state) {
  Rng rng(1);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const BoolMatrix a = BoolMatrix::random(n, 0.2, rng);
  const BoolMatrix b = BoolMatrix::random(n, 0.2, rng);
  for (auto _ : state) benchmark::DoNotOptimize(multiply_bitset(a, b).popcount());
  state.counters["n"] = n;
}
BENCHMARK(BM_DirectBitset)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_ViaMsrp(benchmark::State& state) {
  Rng rng(1);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto sigma = static_cast<std::uint32_t>(state.range(1));
  const BoolMatrix a = BoolMatrix::random(n, 0.2, rng);
  const BoolMatrix b = BoolMatrix::random(n, 0.2, rng);
  Config cfg;
  cfg.exact = true;
  BoolMatrix c(n);
  for (auto _ : state) {
    c = multiply_via_msrp(a, b, sigma, cfg);
    benchmark::DoNotOptimize(c.popcount());
  }
  // Verify outside the timing loop: the reduction must stay correct.
  if (!(c == multiply_bitset(a, b))) state.SkipWithError("reduction decoded wrong product");
  state.counters["n"] = n;
  state.counters["sigma"] = sigma;
}
BENCHMARK(BM_ViaMsrp)
    ->Args({32, 2})
    ->Args({64, 1})
    ->Args({64, 4})
    ->Args({128, 2})
    ->Args({128, 8})
    ->Unit(benchmark::kMillisecond);

void BM_GadgetConstruction(benchmark::State& state) {
  Rng rng(1);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t sigma = 4;
  std::uint32_t q = 1;
  while (sigma * q * q < n) ++q;
  const BoolMatrix a = BoolMatrix::random(sigma * q * q, 0.2, rng);
  const BoolMatrix b = BoolMatrix::random(sigma * q * q, 0.2, rng);
  std::uint64_t edges = 0;
  for (auto _ : state) {
    const ReductionGadget gd = build_reduction_gadget(a, b, 0, sigma, q);
    edges = gd.graph.num_edges();
    benchmark::DoNotOptimize(edges);
  }
  state.counters["gadget_vertices"] = static_cast<double>(3 * a.size() + sigma * q * q + sigma * q);
  state.counters["gadget_edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_GadgetConstruction)->Arg(64)->Arg(144)->Arg(256)->Unit(benchmark::kMicrosecond);

}  // namespace
