// EXP-4 — the phase budget of Theorem 26's analysis.
//
// The paper accounts for the total as:
//   preprocessing BFS over landmarks .... O~(m sqrt(n sigma))
//   landmark replacement paths .......... O~(m sqrt(n sigma) + sigma n^2)
//   near-small auxiliary Dijkstras ...... O~(m sqrt(n / sigma)) per source
//   far + near-large assembly ........... O~(sigma n^2)
// This binary reports measured per-phase shares (from the solver's internal
// PhaseTimers) as counters, for both landmark-table methods.
#include "bench_common.hpp"

namespace {

using namespace msrp;
using namespace msrp::benchutil;

void run_phases(benchmark::State& state, const Graph& g, LandmarkRpMethod method) {
  const auto sigma = static_cast<std::uint32_t>(state.range(0));
  const auto sources = spread_sources(g, sigma);
  Config cfg;
  cfg.landmark_rp = method;
  MsrpStats stats;
  for (auto _ : state) {
    const MsrpResult res = solve_msrp(g, sources, cfg);
    stats = res.stats();
    benchmark::DoNotOptimize(&stats);
  }
  state.counters["sigma"] = sigma;
  state.counters["landmarks"] = static_cast<double>(stats.num_landmarks);
  state.counters["trees"] = static_cast<double>(stats.num_trees);
  double total = 0;
  for (const auto& [name, secs] : stats.phase_seconds) total += secs;
  for (const auto& [name, secs] : stats.phase_seconds) {
    state.counters["pct_" + name] = total > 0 ? 100.0 * secs / total : 0.0;
  }
  state.counters["aux_arcs_near_small"] = static_cast<double>(stats.near_small_aux_arcs);
}

void BM_Phases_Mmg(benchmark::State& state) {
  static const Graph g = er_graph(1024, 8.0);
  run_phases(state, g, LandmarkRpMethod::kMmgPerPair);
}
BENCHMARK(BM_Phases_Mmg)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_Phases_Bk(benchmark::State& state) {
  static const Graph g = er_graph(384, 8.0);
  run_phases(state, g, LandmarkRpMethod::kBkAuxGraphs);
}
BENCHMARK(BM_Phases_Bk)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_Phases_Mmg_Grid(benchmark::State& state) {
  static const Graph g = grid_graph(1024);
  run_phases(state, g, LandmarkRpMethod::kMmgPerPair);
}
BENCHMARK(BM_Phases_Mmg_Grid)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace
