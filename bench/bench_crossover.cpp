// EXP-3 — where the MSRP algorithm overtakes the exact baselines.
//
// Three algorithms on the same workload:
//   msrp       O~(m sqrt(n sigma) + sigma n^2)   (this paper)
//   per_pair   O~(sigma n (m + n) log n)         (Section 3's "inefficient")
//   brute      Theta(sigma n m)                  (delete-and-BFS)
//
// The paper's claim is asymptotic; the reproduction question is where the
// crossover actually falls at practical constants, on both low-diameter
// (ER: replacement structure shallow) and high-diameter (chorded path:
// replacement structure deep) inputs.
#include "bench_common.hpp"

#include <cmath>

#include "baseline/baselines.hpp"

namespace {

using namespace msrp;
using namespace msrp::benchutil;

constexpr std::uint32_t kSigma = 4;

enum class Algo : int { kMsrp = 0, kPerPair = 1, kBrute = 2 };

template <typename MakeGraph>
void run(benchmark::State& state, MakeGraph make) {
  const auto algo = static_cast<Algo>(state.range(1));
  const Graph g = make(static_cast<Vertex>(state.range(0)));
  const auto sources = spread_sources(g, kSigma);
  for (auto _ : state) {
    switch (algo) {
      case Algo::kMsrp:
        benchmark::DoNotOptimize(output_cells(solve_msrp(g, sources), g));
        break;
      case Algo::kPerPair:
        benchmark::DoNotOptimize(output_cells(solve_msrp_per_pair(g, sources), g));
        break;
      case Algo::kBrute:
        benchmark::DoNotOptimize(output_cells(solve_msrp_brute_force(g, sources), g));
        break;
    }
  }
  state.counters["n"] = g.num_vertices();
  state.counters["m"] = g.num_edges();
  state.SetLabel(algo == Algo::kMsrp ? "msrp" : algo == Algo::kPerPair ? "per_pair" : "brute");
}

void BM_Crossover_ER(benchmark::State& state) {
  run(state, [](Vertex n) { return er_graph(n, 8.0); });
}

// Dense regime (avg degree ~ sqrt(n)): here m sqrt(n sigma) << sigma n m and
// the landmark preprocessing's edge saving dominates — the regime where the
// paper's first term wins decisively over delete-and-BFS.
void BM_Crossover_Dense(benchmark::State& state) {
  run(state, [](Vertex n) {
    return er_graph(n, std::sqrt(static_cast<double>(n)));
  });
}

void BM_Crossover_ChordedPath(benchmark::State& state) {
  run(state, [](Vertex n) { return chorded_path(n); });
}

void add_args(benchmark::internal::Benchmark* b) {
  for (const std::int64_t n : {256, 512, 1024, 2048}) {
    for (const std::int64_t algo : {0, 1, 2}) b->Args({n, algo});
  }
}

BENCHMARK(BM_Crossover_ER)->Apply(add_args)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Crossover_Dense)->Apply(add_args)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Crossover_ChordedPath)->Apply(add_args)->Unit(benchmark::kMillisecond);

}  // namespace
