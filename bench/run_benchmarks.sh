#!/usr/bin/env bash
# Runs the machine-readable benchmark suite and writes the JSON trajectories
# the repo tracks across PRs:
#
#   BENCH_build.json    — oracle construction cost vs. thread count
#   BENCH_service.json  — serving-layer throughput / latency rows
#
# Usage:  bench/run_benchmarks.sh [build_dir] [extra google-benchmark args...]
#
# The build dir must contain the bench binaries (configure with
# google-benchmark installed; see CMakeLists.txt). Also available as the
# `bench_json` CMake target. Extra args are forwarded to both binaries —
# e.g. --benchmark_filter=BM_BuildGridSmall for a quick pass.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
if [[ $# -gt 0 && $1 != -* ]]; then  # a leading flag is an extra arg, not a dir
  build_dir="$1"
  shift
fi

for bin in bench_build bench_service bench_net; do
  if [[ ! -x "$build_dir/$bin" ]]; then
    echo "error: $build_dir/$bin not found; configure with google-benchmark installed" >&2
    exit 1
  fi
done

echo "== bench_build -> BENCH_build.json"
"$build_dir/bench_build" \
  --benchmark_out="$repo_root/BENCH_build.json" --benchmark_out_format=json "$@"

echo "== bench_service -> BENCH_service.json"
"$build_dir/bench_service" \
  --benchmark_out="$repo_root/BENCH_service.json" --benchmark_out_format=json "$@"

# The loopback TCP rows belong in the serving trajectory, next to the
# in-process paths they wrap: run bench_net separately (it owns a server
# thread) and merge its rows into BENCH_service.json.
echo "== bench_net -> BENCH_service.json (merged)"
net_json="$(mktemp /tmp/bench_net.XXXXXX.json)"
"$build_dir/bench_net" \
  --benchmark_out="$net_json" --benchmark_out_format=json "$@"
python3 - "$repo_root/BENCH_service.json" "$net_json" <<'PY'
import json, sys
svc_path, net_path = sys.argv[1], sys.argv[2]
with open(svc_path) as f:
    svc = json.load(f)
with open(net_path) as f:
    net = json.load(f)
# Re-base the appended rows' family indices past the existing ones so
# tooling that groups by family_index never conflates TCP rows with the
# in-process rows they happen to share indices with.
offset = 1 + max((b.get("family_index", 0) for b in svc["benchmarks"]), default=-1)
for b in net["benchmarks"]:
    if "family_index" in b:
        b["family_index"] += offset
svc["benchmarks"].extend(net["benchmarks"])
with open(svc_path, "w") as f:
    json.dump(svc, f, indent=2)
    f.write("\n")
PY
rm -f "$net_json"

echo "wrote $repo_root/BENCH_build.json and $repo_root/BENCH_service.json"
