#!/usr/bin/env bash
# Runs the machine-readable benchmark suite and writes the JSON trajectories
# the repo tracks across PRs:
#
#   BENCH_build.json    — oracle construction cost vs. thread count
#   BENCH_service.json  — serving-layer throughput / latency rows
#
# Usage:  bench/run_benchmarks.sh [build_dir] [extra google-benchmark args...]
#
# The build dir must contain the bench binaries (configure with
# google-benchmark installed; see CMakeLists.txt). Also available as the
# `bench_json` CMake target. Extra args are forwarded to both binaries —
# e.g. --benchmark_filter=BM_BuildGridSmall for a quick pass.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
if [[ $# -gt 0 && $1 != -* ]]; then  # a leading flag is an extra arg, not a dir
  build_dir="$1"
  shift
fi

for bin in bench_build bench_service; do
  if [[ ! -x "$build_dir/$bin" ]]; then
    echo "error: $build_dir/$bin not found; configure with google-benchmark installed" >&2
    exit 1
  fi
done

echo "== bench_build -> BENCH_build.json"
"$build_dir/bench_build" \
  --benchmark_out="$repo_root/BENCH_build.json" --benchmark_out_format=json "$@"

echo "== bench_service -> BENCH_service.json"
"$build_dir/bench_service" \
  --benchmark_out="$repo_root/BENCH_service.json" --benchmark_out_format=json "$@"

echo "wrote $repo_root/BENCH_build.json and $repo_root/BENCH_service.json"
