#!/usr/bin/env bash
# Runs the machine-readable benchmark suite and writes the JSON trajectories
# the repo tracks across PRs:
#
#   BENCH_build.json    — oracle construction cost vs. thread count
#   BENCH_service.json  — serving-layer throughput / latency rows
#
# Usage:  bench/run_benchmarks.sh [build_dir] [extra google-benchmark args...]
#
# The build dir must contain the bench binaries (configure with
# google-benchmark installed; see CMakeLists.txt). Also available as the
# `bench_json` CMake target. Extra args are forwarded to both binaries —
# e.g. --benchmark_filter=BM_BuildGridSmall for a quick pass.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
if [[ $# -gt 0 && $1 != -* ]]; then  # a leading flag is an extra arg, not a dir
  build_dir="$1"
  shift
fi

for bin in bench_build bench_service bench_net bench_obs; do
  if [[ ! -x "$build_dir/$bin" ]]; then
    echo "error: $build_dir/$bin not found; configure with google-benchmark installed" >&2
    exit 1
  fi
done

echo "== bench_build -> BENCH_build.json"
"$build_dir/bench_build" \
  --benchmark_out="$repo_root/BENCH_build.json" --benchmark_out_format=json "$@"

echo "== bench_service -> BENCH_service.json"
"$build_dir/bench_service" \
  --benchmark_out="$repo_root/BENCH_service.json" --benchmark_out_format=json "$@"

# Rows from the remaining binaries belong in the serving trajectory next
# to the in-process paths they wrap or instrument: run each separately
# (bench_net owns a server thread) and merge its rows into
# BENCH_service.json, re-basing family indices past the existing ones so
# tooling that groups by family_index never conflates merged rows with the
# in-process rows they happen to share indices with.
merge_into_service() {
  local bin="$1"
  shift
  echo "== $bin -> BENCH_service.json (merged)"
  local tmp_json
  tmp_json="$(mktemp "/tmp/$bin.XXXXXX.json")"
  "$build_dir/$bin" \
    --benchmark_out="$tmp_json" --benchmark_out_format=json "$@"
  python3 - "$repo_root/BENCH_service.json" "$tmp_json" <<'PY'
import json, sys
svc_path, extra_path = sys.argv[1], sys.argv[2]
with open(svc_path) as f:
    svc = json.load(f)
with open(extra_path) as f:
    extra = json.load(f)
offset = 1 + max((b.get("family_index", 0) for b in svc["benchmarks"]), default=-1)
for b in extra["benchmarks"]:
    if "family_index" in b:
        b["family_index"] += offset
svc["benchmarks"].extend(extra["benchmarks"])
with open(svc_path, "w") as f:
    json.dump(svc, f, indent=2)
    f.write("\n")
PY
  rm -f "$tmp_json"
}

merge_into_service bench_net "$@"
merge_into_service bench_obs "$@"

echo "wrote $repo_root/BENCH_build.json and $repo_root/BENCH_service.json"
