// Shared helpers for the benchmark binaries (see DESIGN.md per-experiment
// index). Each binary prints the rows of one "table" of the reproduction:
// google-benchmark timings plus counters for the quantities the paper's
// analysis tracks (landmark counts, auxiliary sizes, phase shares).
#pragma once

#include <benchmark/benchmark.h>

#include <vector>

#include "core/msrp.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace msrp::benchutil {

inline Graph er_graph(Vertex n, double avg_deg, std::uint64_t seed = 42) {
  Rng rng(seed);
  return gen::connected_avg_degree(n, avg_deg, rng);
}

/// High-diameter workload: grid as close to square as possible.
inline Graph grid_graph(Vertex n) {
  Vertex rows = 1;
  while ((rows + 1) * (rows + 1) <= n) ++rows;
  return gen::grid(rows, n / rows);
}

inline Graph chorded_path(Vertex n, std::uint64_t seed = 42) {
  Rng rng(seed);
  return gen::path_with_chords(n, n / 8, rng);
}

inline std::vector<Vertex> spread_sources(const Graph& g, std::uint32_t sigma,
                                          std::uint64_t seed = 7) {
  Rng rng(seed);
  const auto picks = rng.sample_without_replacement(g.num_vertices(), sigma);
  return {picks.begin(), picks.end()};
}

/// Output cells produced by a run: sum over (s, t) of path lengths.
inline std::uint64_t output_cells(const MsrpResult& res, const Graph& g) {
  std::uint64_t cells = 0;
  for (const Vertex s : res.sources()) {
    for (Vertex t = 0; t < g.num_vertices(); ++t) cells += res.row(s, t).size();
  }
  return cells;
}

}  // namespace msrp::benchutil
