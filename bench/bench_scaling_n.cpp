// EXP-1 — Theorem 26's total-time shape versus n at fixed sigma.
//
// The paper claims O~(m sqrt(n sigma) + sigma n^2). With m = Theta(n)
// (constant average degree) the bound is O~(sigma n^2); the brute-force
// baseline costs Theta(sigma n m) = Theta(sigma n^2) too but with a far
// larger constant, and per-pair MMG costs O~(sigma n (m + n) log n). The
// series below reproduce the claimed ordering and growth on both a
// low-diameter (ER) and a high-diameter (grid) workload.
#include "bench_common.hpp"

#include "baseline/baselines.hpp"

namespace {

using namespace msrp;
using namespace msrp::benchutil;

constexpr std::uint32_t kSigma = 4;
constexpr double kAvgDeg = 8.0;

void counters(benchmark::State& state, const Graph& g) {
  state.counters["n"] = g.num_vertices();
  state.counters["m"] = g.num_edges();
  state.counters["sigma"] = kSigma;
}

void BM_Msrp_ER(benchmark::State& state) {
  const Graph g = er_graph(static_cast<Vertex>(state.range(0)), kAvgDeg);
  const auto sources = spread_sources(g, kSigma);
  std::uint64_t cells = 0;
  for (auto _ : state) {
    const MsrpResult res = solve_msrp(g, sources);
    cells = output_cells(res, g);
    benchmark::DoNotOptimize(cells);
  }
  counters(state, g);
  state.counters["out_cells"] = static_cast<double>(cells);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Msrp_ER)->RangeMultiplier(2)->Range(256, 4096)->Complexity()->Unit(benchmark::kMillisecond);

void BM_Msrp_Grid(benchmark::State& state) {
  const Graph g = grid_graph(static_cast<Vertex>(state.range(0)));
  const auto sources = spread_sources(g, kSigma);
  for (auto _ : state) {
    benchmark::DoNotOptimize(output_cells(solve_msrp(g, sources), g));
  }
  counters(state, g);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Msrp_Grid)->RangeMultiplier(2)->Range(256, 4096)->Complexity()->Unit(benchmark::kMillisecond);

void BM_PerPair_ER(benchmark::State& state) {
  const Graph g = er_graph(static_cast<Vertex>(state.range(0)), kAvgDeg);
  const auto sources = spread_sources(g, kSigma);
  for (auto _ : state) {
    benchmark::DoNotOptimize(output_cells(solve_msrp_per_pair(g, sources), g));
  }
  counters(state, g);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PerPair_ER)->RangeMultiplier(2)->Range(256, 2048)->Complexity()->Unit(benchmark::kMillisecond);

void BM_BruteForce_ER(benchmark::State& state) {
  const Graph g = er_graph(static_cast<Vertex>(state.range(0)), kAvgDeg);
  const auto sources = spread_sources(g, kSigma);
  for (auto _ : state) {
    benchmark::DoNotOptimize(output_cells(solve_msrp_brute_force(g, sources), g));
  }
  counters(state, g);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BruteForce_ER)->RangeMultiplier(2)->Range(256, 2048)->Complexity()->Unit(benchmark::kMillisecond);

}  // namespace
